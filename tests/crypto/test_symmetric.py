"""Tests for the ChaCha20 + HMAC authenticated encryption."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto import symmetric
from repro.errors import DecryptionError, IntegrityError, ParameterError

# RFC 7539 section 2.3.2 test vector.
RFC_KEY = bytes(range(32))
RFC_NONCE = bytes.fromhex("000000090000004a00000000")
RFC_BLOCK_1 = bytes.fromhex(
    "10f1e7e4d13b5915500fdd1fa32071c4"
    "c7d1f4c733c068030422aa9ac3d46c4e"
    "d2826446079faa0914c2d705d98b02a2"
    "b5129cd1de164eb9cbd083e8a2503c4e"
)

# RFC 7539 section 2.4.2 encryption test vector.
RFC_PLAINTEXT = (
    b"Ladies and Gentlemen of the class of '99: If I could offer you "
    b"only one tip for the future, sunscreen would be it."
)
RFC_ENC_NONCE = bytes.fromhex("000000000000004a00000000")
RFC_CIPHERTEXT = bytes.fromhex(
    "6e2e359a2568f98041ba0728dd0d6981"
    "e97e7aec1d4360c20a27afccfd9fae0b"
    "f91b65c5524733ab8f593dabcd62b357"
    "1639d624e65152ab8f530c359f0861d8"
    "07ca0dbf500d6a6156a38e088a22b65e"
    "52bc514d16ccf806818ce91ab7793736"
    "5af90bbf74a35be6b40b8eedf2785e42"
    "874d"
)


class TestChaCha20Core:
    def test_rfc7539_block(self):
        assert symmetric.chacha20_block(RFC_KEY, 1, RFC_NONCE) == RFC_BLOCK_1

    def test_rfc7539_encryption(self):
        out = symmetric.chacha20_xor(RFC_KEY, RFC_ENC_NONCE, RFC_PLAINTEXT, counter=1)
        assert out == RFC_CIPHERTEXT

    def test_xor_is_involution(self):
        data = b"attack at dawn" * 10
        nonce = bytes(12)
        once = symmetric.chacha20_xor(RFC_KEY, nonce, data)
        assert symmetric.chacha20_xor(RFC_KEY, nonce, once) == data

    def test_bad_key_length(self):
        with pytest.raises(ParameterError):
            symmetric.chacha20_block(b"short", 0, bytes(12))

    def test_bad_nonce_length(self):
        with pytest.raises(ParameterError):
            symmetric.chacha20_block(RFC_KEY, 0, bytes(8))


class TestAuthenticatedEncryption:
    def test_round_trip(self):
        key = symmetric.generate_key()
        ct = symmetric.encrypt(key, b"hello world")
        assert symmetric.decrypt(key, ct) == b"hello world"

    def test_empty_plaintext(self):
        key = symmetric.generate_key()
        assert symmetric.decrypt(key, symmetric.encrypt(key, b"")) == b""

    @given(st.binary(max_size=2048))
    def test_round_trip_property(self, plaintext):
        key = bytes(range(32))
        assert symmetric.decrypt(key, symmetric.encrypt(key, plaintext)) == plaintext

    def test_associated_data_binding(self):
        key = symmetric.generate_key()
        ct = symmetric.encrypt(key, b"payload", b"header-1")
        assert symmetric.decrypt(key, ct, b"header-1") == b"payload"
        with pytest.raises(IntegrityError):
            symmetric.decrypt(key, ct, b"header-2")

    def test_tamper_detection_every_byte_region(self):
        key = symmetric.generate_key()
        ct = bytearray(symmetric.encrypt(key, b"sensitive data"))
        for position in (0, symmetric.NONCE_BYTES, len(ct) - 1):
            mutated = bytearray(ct)
            mutated[position] ^= 0x01
            with pytest.raises(IntegrityError):
                symmetric.decrypt(key, bytes(mutated))

    def test_wrong_key_rejected(self):
        ct = symmetric.encrypt(symmetric.generate_key(), b"data")
        with pytest.raises(IntegrityError):
            symmetric.decrypt(symmetric.generate_key(), ct)

    def test_truncated_ciphertext(self):
        with pytest.raises(DecryptionError):
            symmetric.decrypt(symmetric.generate_key(), b"tiny")

    def test_nondeterministic_ciphertexts(self):
        key = symmetric.generate_key()
        assert symmetric.encrypt(key, b"x") != symmetric.encrypt(key, b"x")

    def test_bad_key_size(self):
        with pytest.raises(ParameterError):
            symmetric.encrypt(b"short", b"x")

    def test_overhead_constant(self):
        key = symmetric.generate_key()
        ct = symmetric.encrypt(key, b"y" * 100)
        assert len(ct) - 100 == symmetric.ciphertext_overhead()
