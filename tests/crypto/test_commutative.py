"""Tests for the SRA commutative cipher over QR_p."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import commutative as comm
from repro.crypto import groups
from repro.crypto.hashes import IdealHash
from repro.errors import KeyError_, ParameterError


@pytest.fixture(scope="module")
def group():
    return groups.commutative_group(128)


@pytest.fixture(scope="module")
def ideal_hash(group):
    return IdealHash(group.p)


class TestGroup:
    def test_small_modulus_rejected(self):
        with pytest.raises(ParameterError):
            comm.CommutativeGroup(7)

    def test_non_safe_shape_rejected(self):
        # 29 is prime but 29 % 4 == 1, so it cannot be a safe prime > 5.
        with pytest.raises(ParameterError):
            comm.CommutativeGroup(29)

    def test_verify_known_safe_prime(self, group):
        assert group.verify()

    def test_verify_rejects_composite(self):
        bogus = comm.CommutativeGroup(23 * 47 * 2 + 1)  # 2163: 3 mod 4 shape
        assert not bogus.verify()

    def test_membership(self, group):
        element = group.random_element()
        assert group.contains(element)
        assert not group.contains(0)
        assert not group.contains(group.p)

    def test_random_elements_are_residues(self, group):
        for _ in range(20):
            x = group.random_element()
            assert pow(x, group.q, group.p) == 1


class TestKeys:
    def test_exponent_coprime(self, group):
        for _ in range(20):
            key = comm.generate_key(group)
            assert math.gcd(key.exponent, group.q) == 1

    def test_out_of_range_exponent_rejected(self, group):
        with pytest.raises(KeyError_):
            comm.CommutativeKey(group, 0)
        with pytest.raises(KeyError_):
            comm.CommutativeKey(group, group.q)

    def test_non_coprime_exponent_rejected(self):
        # Build a group whose q has a small factor we can hit: use the
        # 64-bit precomputed group and the factor q itself is prime, so
        # q is the only non-coprime value below q... use exponent q -> out
        # of range anyway; instead verify gcd check via a tiny crafted case.
        group = comm.CommutativeGroup(23)  # q = 11
        with pytest.raises(KeyError_):
            comm.CommutativeKey(group, 11)

    def test_inverse_key(self, group):
        key = comm.generate_key(group)
        assert key.inverse().exponent * key.exponent % group.q == 1


class TestCipher:
    def test_apply_invert_round_trip(self, group, ideal_hash):
        key = comm.generate_key(group)
        x = ideal_hash(b"value")
        assert comm.invert(key, comm.apply(key, x)) == x

    def test_commutativity(self, group, ideal_hash):
        k1, k2 = comm.generate_key(group), comm.generate_key(group)
        x = ideal_hash(b"alpha")
        assert comm.apply(k1, comm.apply(k2, x)) == comm.apply(k2, comm.apply(k1, x))

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_commutativity_property(self, group, ideal_hash, data):
        k1, k2 = comm.generate_key(group), comm.generate_key(group)
        x = ideal_hash(data)
        double_12 = comm.apply(k1, comm.apply(k2, x))
        double_21 = comm.apply(k2, comm.apply(k1, x))
        assert double_12 == double_21
        # Full inversion in either order recovers x.
        assert comm.invert(k2, comm.invert(k1, double_12)) == x

    def test_bijectivity_on_sample(self, group):
        key = comm.generate_key(group)
        inputs = {group.random_element() for _ in range(50)}
        outputs = {comm.apply(key, x) for x in inputs}
        assert len(outputs) == len(inputs)

    def test_domain_enforced(self, group):
        key = comm.generate_key(group)
        non_residue = _find_non_residue(group)
        with pytest.raises(ParameterError):
            comm.apply(key, non_residue)
        with pytest.raises(ParameterError):
            comm.invert(key, non_residue)

    def test_distinct_keys_distinct_ciphertexts(self, group, ideal_hash):
        x = ideal_hash(b"val")
        k1, k2 = comm.generate_key(group), comm.generate_key(group)
        if k1.exponent != k2.exponent:
            assert comm.apply(k1, x) != comm.apply(k2, x)


class TestMatchingSemantics:
    """The property Listing 3 relies on: equal values match, others don't."""

    def test_equal_inputs_equal_double_encryption(self, group, ideal_hash):
        k1, k2 = comm.generate_key(group), comm.generate_key(group)
        a = ideal_hash(b"common-value")
        assert comm.apply(k1, comm.apply(k2, a)) == comm.apply(k2, comm.apply(k1, a))

    def test_distinct_inputs_never_collide(self, group, ideal_hash):
        k1, k2 = comm.generate_key(group), comm.generate_key(group)
        values = [ideal_hash(f"v{i}".encode()) for i in range(30)]
        doubled = [comm.apply(k1, comm.apply(k2, v)) for v in values]
        assert len(set(doubled)) == len(values)


def _find_non_residue(group):
    candidate = 2
    while group.contains(candidate):
        candidate += 1
    return candidate
