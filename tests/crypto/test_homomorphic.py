"""Tests for the scheme-agnostic homomorphic interface."""

import pytest

from repro.crypto.ec import TINY
from repro.crypto.homomorphic import ECElGamalScheme, PaillierScheme


@pytest.fixture(
    scope="module",
    params=["paillier", "ec-elgamal"],
)
def scheme(request):
    if request.param == "paillier":
        return PaillierScheme(256)
    return ECElGamalScheme(TINY, dlog_bound=2000)


@pytest.fixture(scope="module")
def keypair(scheme):
    return scheme.generate_keypair()


class TestSchemeContract:
    """Every adapter must satisfy the interface the protocols rely on."""

    def test_round_trip(self, scheme, keypair):
        pk = scheme.public_key(keypair)
        for m in (0, 1, 42):
            assert scheme.decrypt(keypair, scheme.encrypt(pk, m)) == m

    def test_addition(self, scheme, keypair):
        pk = scheme.public_key(keypair)
        total = scheme.add(scheme.encrypt(pk, 20), scheme.encrypt(pk, 22))
        assert scheme.decrypt(keypair, total) == 42

    def test_scalar_multiplication(self, scheme, keypair):
        pk = scheme.public_key(keypair)
        ct = scheme.scalar_multiply(scheme.encrypt(pk, 6), 7)
        assert scheme.decrypt(keypair, ct) == 42

    def test_add_plain(self, scheme, keypair):
        pk = scheme.public_key(keypair)
        ct = scheme.add_plain(scheme.encrypt(pk, 40), 2)
        assert scheme.decrypt(keypair, ct) == 42

    def test_plaintext_bound_positive(self, scheme, keypair):
        pk = scheme.public_key(keypair)
        assert scheme.plaintext_bound(pk) > 1000

    def test_ciphertext_size_positive(self, scheme, keypair):
        pk = scheme.public_key(keypair)
        assert scheme.ciphertext_size_bytes(scheme.encrypt(pk, 1)) > 0


class TestECElGamalSpecifics:
    def test_out_of_band_decrypt_is_sentinel(self):
        scheme = ECElGamalScheme(TINY, dlog_bound=100)
        keypair = scheme.generate_keypair()
        pk = scheme.public_key(keypair)
        # A plaintext beyond the dlog bound decodes to the sentinel value
        # (plaintext_bound), which payload decoding will reject.
        big = scheme.encrypt(pk, 500)
        assert scheme.decrypt(keypair, big) == 101

    def test_bound_clamped_to_curve_order(self):
        scheme = ECElGamalScheme(TINY, dlog_bound=10**9)
        assert scheme.dlog_bound <= TINY.n - 1
