"""Batch-vs-scalar equivalence tests for the crypto engine.

The engine's contract: every ``batch_*`` API returns exactly what
mapping the scalar primitive over the inputs would — byte-identical
values and identical primitive counts — in every execution mode
(serial, pooled, legacy).  The pooled engine is forced onto tiny
inputs here (``workers=2, threshold=1``) so the process-pool path is
exercised even though these batches would normally stay serial.
"""

from __future__ import annotations

import secrets

import pytest

from repro.crypto import commutative as comm
from repro.crypto import groups, hybrid, instrumentation, paillier, rsa
from repro.crypto.engine import (
    CryptoEngine,
    FixedBaseTable,
    PaillierNonceCache,
    get_engine,
    set_engine,
    use_engine,
)
from repro.crypto.polynomial import encrypt_polynomial, evaluate, from_roots
from repro.errors import ParameterError
from repro.mediation.ca import verify_credential


@pytest.fixture(scope="module")
def serial():
    return CryptoEngine(workers=0)


@pytest.fixture(scope="module")
def pooled():
    engine = CryptoEngine(workers=2, threshold=1)
    yield engine
    engine.close()


@pytest.fixture(scope="module")
def legacy():
    return CryptoEngine(workers=0, legacy=True)


@pytest.fixture(scope="module")
def all_engines(serial, pooled, legacy):
    return [serial, pooled, legacy]


@pytest.fixture(scope="module")
def comm_key(comm_group):
    return comm.generate_key(comm_group)


def counted(callable_, *args, **kwargs):
    """Run ``callable_`` under a fresh counter; return (result, counts)."""
    with instrumentation.count_primitives() as counter:
        result = callable_(*args, **kwargs)
    return result, dict(counter.counts)


class TestDispatch:
    def test_modes(self, serial, pooled, legacy):
        assert serial.mode == "serial"
        assert pooled.mode == "pooled"
        assert legacy.mode == "legacy"

    def test_threshold_keeps_small_batches_serial(self):
        engine = CryptoEngine(workers=2, threshold=50)
        assert not engine._use_pool(49)
        assert engine._use_pool(50)
        engine.close()

    def test_legacy_never_pools(self):
        engine = CryptoEngine(workers=4, threshold=1, legacy=True)
        assert not engine._use_pool(1000)
        engine.close()

    def test_env_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_CRYPTO_WORKERS", "3")
        assert CryptoEngine().workers == 3
        monkeypatch.setenv("REPRO_CRYPTO_WORKERS", "zebra")
        with pytest.raises(ParameterError):
            CryptoEngine()

    def test_installed_engine_swaps(self):
        default = get_engine()
        custom = CryptoEngine(workers=0)
        with use_engine(custom):
            assert get_engine() is custom
        assert get_engine() is default
        previous = set_engine(custom)
        assert get_engine() is custom
        set_engine(previous)


class TestBatchPow:
    def test_matches_builtin_pow(self, all_engines, comm_group):
        bases = [comm_group.random_element() for _ in range(7)]
        expected = [pow(b, 65537, comm_group.p) for b in bases]
        for engine in all_engines:
            assert engine.batch_pow(bases, 65537, comm_group.p) == expected

    def test_empty_batch(self, serial, pooled):
        assert serial.batch_pow([], 3, 97) == []
        assert pooled.batch_pow([], 3, 97) == []


class TestBatchCommutative:
    def test_encrypt_matches_scalar(self, all_engines, comm_group, comm_key):
        values = [comm_group.random_element() for _ in range(9)]
        expected, scalar_counts = counted(
            lambda: [comm.apply(comm_key, v) for v in values]
        )
        for engine in all_engines:
            got, batch_counts = counted(
                engine.batch_commutative_encrypt, comm_key, values
            )
            assert got == expected, engine.mode
            assert batch_counts == scalar_counts, engine.mode

    def test_decrypt_inverts_encrypt(self, all_engines, comm_group, comm_key):
        values = [comm_group.random_element() for _ in range(9)]
        for engine in all_engines:
            tags = engine.batch_commutative_encrypt(comm_key, values)
            assert engine.batch_commutative_decrypt(comm_key, tags) == values

    def test_decrypt_counts_match_scalar(self, serial, comm_group, comm_key):
        values = [comm_group.random_element() for _ in range(4)]
        tags = [comm.apply(comm_key, v) for v in values]
        expected, scalar_counts = counted(
            lambda: [comm.invert(comm_key, t) for t in tags]
        )
        got, batch_counts = counted(
            serial.batch_commutative_decrypt, comm_key, tags
        )
        assert got == expected
        assert batch_counts == scalar_counts

    def test_validation_rejects_non_residues(self, all_engines, comm_group, comm_key):
        non_residue = next(
            x for x in range(2, 1000) if not comm_group.contains(x)
        )
        for engine in all_engines:
            with pytest.raises(ParameterError):
                engine.batch_commutative_encrypt(comm_key, [non_residue])

    def test_skipping_validation_for_members(self, serial, comm_group, comm_key):
        values = [comm_group.random_element() for _ in range(3)]
        expected = [comm.apply(comm_key, v) for v in values]
        assert (
            serial.batch_commutative_encrypt(comm_key, values, validate=False)
            == expected
        )


class TestBatchPaillier:
    def test_encrypt_deterministic_with_randomness(self, all_engines, paillier_key):
        pk = paillier_key.public_key
        plaintexts = list(range(8))
        randomness = [paillier.random_unit(pk.n) for _ in plaintexts]
        expected, scalar_counts = counted(
            lambda: [
                paillier.encrypt(pk, m, r).value
                for m, r in zip(plaintexts, randomness)
            ]
        )
        for engine in all_engines:
            got, batch_counts = counted(
                engine.batch_paillier_encrypt, pk, plaintexts, randomness
            )
            assert [c.value for c in got] == expected, engine.mode
            assert batch_counts == scalar_counts, engine.mode

    def test_encrypt_fresh_randomness_roundtrips(self, all_engines, paillier_key):
        pk = paillier_key.public_key
        plaintexts = [secrets.randbelow(pk.n) for _ in range(6)]
        for engine in all_engines:
            ciphertexts, counts = counted(
                engine.batch_paillier_encrypt, pk, plaintexts
            )
            assert [
                paillier.decrypt(paillier_key, c) for c in ciphertexts
            ] == plaintexts, engine.mode
            assert counts["paillier.encrypt"] == len(plaintexts)
            assert counts["random.paillier_nonce"] == len(plaintexts)

    def test_decrypt_matches_scalar(self, all_engines, paillier_key):
        pk = paillier_key.public_key
        plaintexts = [secrets.randbelow(pk.n) for _ in range(6)]
        ciphertexts = [paillier.encrypt(pk, m) for m in plaintexts]
        expected, scalar_counts = counted(
            lambda: [paillier.decrypt(paillier_key, c) for c in ciphertexts]
        )
        assert expected == plaintexts
        for engine in all_engines:
            got, batch_counts = counted(
                engine.batch_paillier_decrypt, paillier_key, ciphertexts
            )
            assert got == expected, engine.mode
            assert batch_counts == scalar_counts, engine.mode

    def test_decrypt_flavours_agree(self, serial, paillier_key):
        pk = paillier_key.public_key
        ciphertexts = [paillier.encrypt(pk, m) for m in (0, 1, pk.n - 1)]
        crt = serial.batch_paillier_decrypt(paillier_key, ciphertexts, "crt")
        textbook = serial.batch_paillier_decrypt(
            paillier_key, ciphertexts, "carmichael"
        )
        assert crt == textbook == [0, 1, pk.n - 1]

    def test_unknown_flavour_rejected(self, serial, paillier_key):
        with pytest.raises(ParameterError):
            serial.batch_paillier_decrypt(paillier_key, [], "quantum")

    def test_nonce_cache_roundtrips(self, serial, pooled, paillier_key):
        pk = paillier_key.public_key
        cache = PaillierNonceCache(pk, pool_size=16, subset_size=4)
        plaintexts = list(range(10))
        for engine in (serial, pooled):
            ciphertexts, counts = counted(
                engine.batch_paillier_encrypt,
                pk,
                plaintexts,
                nonce_cache=cache,
            )
            assert [
                paillier.decrypt(paillier_key, c) for c in ciphertexts
            ] == plaintexts
            assert counts["random.paillier_nonce"] == len(plaintexts)

    def test_nonce_cache_excludes_randomness(self, serial, paillier_key):
        pk = paillier_key.public_key
        cache = PaillierNonceCache(pk, pool_size=8, subset_size=2)
        with pytest.raises(ParameterError):
            serial.batch_paillier_encrypt(pk, [1], randomness=[2], nonce_cache=cache)


class TestBatchScheme:
    def test_encrypt_decrypt_roundtrip(self, all_engines, paillier_scheme, client):
        private_key = client.homomorphic_key
        public_key = paillier_scheme.public_key(private_key)
        plaintexts = [3, 1, 4, 1, 5, 9]
        for engine in all_engines:
            ciphertexts = engine.batch_scheme_encrypt(
                paillier_scheme, public_key, plaintexts
            )
            assert (
                engine.batch_scheme_decrypt(
                    paillier_scheme, private_key, ciphertexts
                )
                == plaintexts
            ), engine.mode


class TestBatchPolyEval:
    def test_matches_scalar_masked_evaluate(
        self, all_engines, paillier_scheme, client
    ):
        private_key = client.homomorphic_key
        public_key = paillier_scheme.public_key(private_key)
        modulus = paillier_scheme.plaintext_bound(public_key)
        roots = [5, 11, 23]
        coefficients = from_roots(roots, modulus)
        encrypted = encrypt_polynomial(paillier_scheme, public_key, coefficients)
        jobs = [
            (x, 1 + secrets.randbelow(modulus - 1), secrets.randbelow(1 << 64))
            for x in (5, 11, 23, 42, 99)
        ]
        expected = [
            (mask * evaluate(coefficients, x, modulus) + payload) % modulus
            for x, mask, payload in jobs
        ]
        for engine in all_engines:
            evaluations = engine.batch_poly_eval(encrypted, jobs)
            decrypted = [
                paillier_scheme.decrypt(private_key, e) for e in evaluations
            ]
            assert decrypted == expected, engine.mode
            # Roots must null the mask so only the payload survives.
            assert decrypted[:3] == [job[2] for job in jobs[:3]]


class TestBatchHybrid:
    def test_decrypt_matches_scalar(self, all_engines, rsa_key):
        plaintexts = [b"tuple-set-%d" % i for i in range(7)]
        ciphertexts = [
            hybrid.encrypt([rsa_key.public_key()], m) for m in plaintexts
        ]
        _, scalar_counts = counted(
            lambda: [hybrid.decrypt(rsa_key, c) for c in ciphertexts]
        )
        for engine in all_engines:
            got, batch_counts = counted(
                engine.batch_hybrid_decrypt, rsa_key, ciphertexts
            )
            assert got == plaintexts, engine.mode
            assert batch_counts == scalar_counts, engine.mode

    def test_encrypt_roundtrips(self, all_engines, rsa_key):
        plaintexts = [b"payload-%d" % i for i in range(6)]
        for engine in all_engines:
            ciphertexts, counts = counted(
                engine.batch_hybrid_encrypt,
                [rsa_key.public_key()],
                plaintexts,
            )
            assert [
                hybrid.decrypt(rsa_key, c) for c in ciphertexts
            ] == plaintexts, engine.mode
            assert counts["hybrid.encrypt"] == len(plaintexts)
            assert counts["rsa.encrypt"] == len(plaintexts)

    def test_associated_data_is_bound(self, serial, rsa_key):
        [ciphertext] = serial.batch_hybrid_encrypt(
            [rsa_key.public_key()], [b"x"], associated_data=b"context"
        )
        assert serial.batch_hybrid_decrypt(
            rsa_key, [ciphertext], associated_data=b"context"
        ) == [b"x"]


class TestMapBatch:
    def test_credential_verification(self, all_engines, ca, client):
        jobs = [
            (credential, ca.verification_key)
            for credential in client.credentials
        ] * 3
        for engine in all_engines:
            assert all(engine.map_batch(verify_credential, jobs)), engine.mode


class TestFixedBaseTable:
    def test_matches_builtin_pow(self, comm_group):
        table = FixedBaseTable(3, comm_group.p, 192)
        for _ in range(25):
            exponent = secrets.randbelow(1 << 192)
            assert table.pow(exponent) == pow(3, exponent, comm_group.p)

    def test_edge_exponents(self, comm_group):
        table = FixedBaseTable(5, comm_group.p, 64, window=4)
        assert table.pow(0) == 1
        assert table.pow(1) == 5
        assert table.pow((1 << 64) - 1) == pow(5, (1 << 64) - 1, comm_group.p)

    def test_oversized_exponent_falls_back(self, comm_group):
        table = FixedBaseTable(7, comm_group.p, 32)
        exponent = 1 << 100
        assert table.pow(exponent) == pow(7, exponent, comm_group.p)

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            FixedBaseTable(2, 1, 10)
        with pytest.raises(ParameterError):
            FixedBaseTable(2, 97, 10, window=0)
        with pytest.raises(ParameterError):
            FixedBaseTable(2, 97, 0)
        with pytest.raises(ParameterError):
            FixedBaseTable(2, 97, 10).pow(-1)

    def test_size_accounting(self):
        table = FixedBaseTable(2, groups.safe_prime(64), 64, window=4)
        assert table.size_bytes() > 0


class TestPooledCounterAggregation:
    def test_worker_counts_replayed_into_nested_counters(
        self, pooled, comm_group, comm_key
    ):
        values = [comm_group.random_element() for _ in range(5)]
        with instrumentation.count_primitives() as outer:
            with instrumentation.count_primitives() as inner:
                pooled.batch_commutative_encrypt(comm_key, values)
        # Both nested counters observe the full batch, exactly as they
        # would have for a serial loop in this process.
        assert inner.counts["commutative.encrypt"] == 5
        assert outer.counts["commutative.encrypt"] == 5
