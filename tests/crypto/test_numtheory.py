"""Unit and property tests for repro.crypto.numtheory."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import groups
from repro.crypto import numtheory as nt
from repro.errors import ParameterError

KNOWN_PRIMES = [2, 3, 5, 7, 11, 101, 7919, 104729, 2**31 - 1]
KNOWN_COMPOSITES = [1, 4, 9, 15, 341, 561, 645, 1105, 25326001, 2**32]


class TestPrimality:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_known_primes(self, p):
        assert nt.is_probable_prime(p)

    @pytest.mark.parametrize("n", KNOWN_COMPOSITES)
    def test_known_composites(self, n):
        # 341, 561, 645, 1105 are Fermat pseudoprimes to base 2;
        # Miller-Rabin must still reject them.
        assert not nt.is_probable_prime(n)

    def test_negative_and_zero(self):
        assert not nt.is_probable_prime(0)
        assert not nt.is_probable_prime(-7)

    @given(st.integers(min_value=2, max_value=5000))
    def test_matches_trial_division(self, n):
        by_trial = all(n % d for d in range(2, int(n**0.5) + 1)) and n >= 2
        assert nt.is_probable_prime(n) == by_trial


class TestGeneration:
    def test_generated_prime_has_exact_bits(self):
        p = nt.generate_prime(64)
        assert p.bit_length() == 64
        assert nt.is_probable_prime(p)

    def test_generated_primes_differ(self):
        assert nt.generate_prime(48) != nt.generate_prime(48)

    def test_too_small_rejected(self):
        with pytest.raises(ParameterError):
            nt.generate_prime(4)

    def test_safe_prime_structure(self):
        p = nt.generate_safe_prime(32)
        assert nt.is_probable_prime(p)
        assert nt.is_probable_prime((p - 1) // 2)
        assert nt.is_safe_prime(p)

    def test_is_safe_prime_rejects_plain_primes(self):
        # 13 is prime but 6 is not.
        assert not nt.is_safe_prime(13)
        assert not nt.is_safe_prime(12)
        assert nt.is_safe_prime(23)  # 23 = 2*11 + 1


class TestModularArithmetic:
    def test_modinv_round_trip(self):
        assert nt.modinv(3, 11) * 3 % 11 == 1

    def test_modinv_not_invertible(self):
        with pytest.raises(ParameterError):
            nt.modinv(6, 9)

    @given(
        st.integers(min_value=1, max_value=10**6),
        st.sampled_from([101, 7919, 104729]),
    )
    def test_modinv_property(self, a, p):
        if a % p == 0:
            return
        assert a * nt.modinv(a, p) % p == 1

    def test_crt_pair(self):
        x = nt.crt_pair(2, 3, 3, 5)
        assert x % 3 == 2 and x % 5 == 3 and 0 <= x < 15

    def test_crt_requires_coprime(self):
        with pytest.raises(ParameterError):
            nt.crt_pair(1, 4, 2, 6)

    @given(
        st.integers(min_value=0, max_value=10**9),
        st.sampled_from([(7, 11), (13, 17), (101, 103)]),
    )
    def test_crt_reconstructs(self, x, moduli):
        m1, m2 = moduli
        x %= m1 * m2
        assert nt.crt_pair(x % m1, m1, x % m2, m2) == x


class TestJacobiAndResidues:
    def test_jacobi_matches_euler_for_primes(self):
        p = 103
        for a in range(1, p):
            euler = pow(a, (p - 1) // 2, p)
            expected = 1 if euler == 1 else -1
            assert nt.jacobi(a, p) == expected

    def test_jacobi_zero(self):
        assert nt.jacobi(0, 7) == 0
        assert nt.jacobi(21, 7) == 0

    def test_jacobi_requires_odd(self):
        with pytest.raises(ParameterError):
            nt.jacobi(3, 8)

    @given(
        st.sampled_from(sorted(groups.KNOWN_SAFE_PRIMES)[:5]),
        st.integers(min_value=2, max_value=2**512),
    )
    @settings(max_examples=60, deadline=None)
    def test_jacobi_matches_euler_on_safe_primes(self, bits, raw):
        # The engine replaces the Euler-criterion residuosity check with
        # a Jacobi-symbol computation; the two must agree on every
        # element of Z_p^* for the deployed safe-prime moduli.
        p = groups.safe_prime(bits)
        a = raw % p
        if a == 0:
            assert nt.jacobi(a, p) == 0
            return
        euler = nt.is_quadratic_residue(a, p)
        assert nt.jacobi(a, p) == (1 if euler else -1)

    def test_jacobi_matches_euler_on_generated_safe_prime(self):
        p = nt.generate_safe_prime(48)
        for _ in range(50):
            a = nt.random_in_range(1, p)
            euler = nt.is_quadratic_residue(a, p)
            assert nt.jacobi(a, p) == (1 if euler else -1)

    @pytest.mark.parametrize("p", [23, 103, 104729])
    def test_sqrt_mod_prime(self, p):
        for a in [2, 5, 10, 99]:
            square = a * a % p
            root = nt.sqrt_mod_prime(square, p)
            assert root * root % p == square

    def test_sqrt_nonresidue_raises(self):
        # 5 is a non-residue mod 7 (squares mod 7: 1,2,4).
        with pytest.raises(ParameterError):
            nt.sqrt_mod_prime(5, 7)

    def test_sqrt_of_zero(self):
        assert nt.sqrt_mod_prime(0, 13) == 0

    @given(st.integers(min_value=1, max_value=10**6))
    def test_sqrt_tonelli_branch(self, a):
        # p = 1 mod 4 exercises the full Tonelli-Shanks loop.
        p = 104729  # 104729 % 4 == 1
        square = a * a % p
        if square == 0:
            return
        root = nt.sqrt_mod_prime(square, p)
        assert root * root % p == square


class TestByteCodecs:
    @given(st.integers(min_value=0, max_value=2**256))
    def test_int_bytes_round_trip(self, n):
        assert nt.bytes_to_int(nt.int_to_bytes(n)) == n

    def test_fixed_length_padding(self):
        assert nt.int_to_bytes(1, 4) == b"\x00\x00\x00\x01"

    def test_zero_encodes_one_byte(self):
        assert nt.int_to_bytes(0) == b"\x00"

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            nt.int_to_bytes(-1)


class TestRandomness:
    def test_random_below_range(self):
        for _ in range(100):
            assert 0 <= nt.random_below(17) < 17

    def test_random_below_invalid(self):
        with pytest.raises(ParameterError):
            nt.random_below(0)

    def test_random_in_range(self):
        for _ in range(100):
            assert 5 <= nt.random_in_range(5, 9) < 9

    def test_random_in_range_empty(self):
        with pytest.raises(ParameterError):
            nt.random_in_range(9, 9)

    def test_random_coprime(self):
        import math

        for _ in range(50):
            r = nt.random_coprime(30)
            assert 1 <= r < 30
            assert math.gcd(r, 30) == 1

    def test_random_coprime_invalid(self):
        with pytest.raises(ParameterError):
            nt.random_coprime(1)
