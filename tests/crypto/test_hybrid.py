"""Tests for the hybrid (KEM/DEM) encryption scheme."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import hybrid, rsa
from repro.errors import DecryptionError, IntegrityError


@pytest.fixture(scope="module")
def key(rsa_key):
    return rsa_key


@pytest.fixture(scope="module")
def second_key():
    return rsa.generate_keypair(1024)


class TestHybrid:
    def test_round_trip(self, key):
        ct = hybrid.encrypt([key.public_key()], b"the partial result")
        assert hybrid.decrypt(key, ct) == b"the partial result"

    def test_large_payload(self, key):
        payload = b"tuple-data" * 10_000
        ct = hybrid.encrypt([key.public_key()], payload)
        assert hybrid.decrypt(key, ct) == payload

    def test_multiple_recipients(self, key, second_key):
        ct = hybrid.encrypt([key.public_key(), second_key.public_key()], b"shared")
        assert hybrid.decrypt(key, ct) == b"shared"
        assert hybrid.decrypt(second_key, ct) == b"shared"
        assert len(ct.wrapped_keys) == 2

    def test_non_recipient_cannot_decrypt(self, key, second_key):
        ct = hybrid.encrypt([key.public_key()], b"private")
        with pytest.raises(DecryptionError):
            hybrid.decrypt(second_key, ct)

    def test_no_recipients_rejected(self):
        with pytest.raises(DecryptionError):
            hybrid.encrypt([], b"data")

    def test_associated_data(self, key):
        ct = hybrid.encrypt([key.public_key()], b"payload", b"msg-header")
        assert hybrid.decrypt(key, ct, b"msg-header") == b"payload"
        with pytest.raises(IntegrityError):
            hybrid.decrypt(key, ct, b"other-header")

    def test_tampered_body_detected(self, key):
        ct = hybrid.encrypt([key.public_key()], b"payload")
        body = bytearray(ct.body)
        body[-1] ^= 0x01
        tampered = hybrid.HybridCiphertext(ct.wrapped_keys, bytes(body))
        with pytest.raises(IntegrityError):
            hybrid.decrypt(key, tampered)

    def test_size_accounting(self, key):
        ct = hybrid.encrypt([key.public_key()], b"x" * 100)
        assert ct.size_bytes() >= 100 + hybrid.wrapped_key_size(key.public_key())

    @given(st.binary(max_size=512))
    @settings(max_examples=20, deadline=None)
    def test_round_trip_property(self, key, payload):
        ct = hybrid.encrypt([key.public_key()], payload)
        assert hybrid.decrypt(key, ct) == payload

    def test_fingerprint_stability(self, key):
        assert hybrid.key_fingerprint(key.public_key()) == hybrid.key_fingerprint(
            key.public_key()
        )

    def test_fingerprint_distinct_keys(self, key, second_key):
        assert hybrid.key_fingerprint(key.public_key()) != hybrid.key_fingerprint(
            second_key.public_key()
        )


class TestSessionLayer:
    def test_session_round_trip(self):
        session_key = bytes(range(32))
        ct = hybrid.session_encrypt(session_key, b"side-table entry")
        assert hybrid.session_decrypt(session_key, ct) == b"side-table entry"

    def test_session_wrong_key(self):
        ct = hybrid.session_encrypt(bytes(32), b"entry")
        with pytest.raises(IntegrityError):
            hybrid.session_decrypt(bytes(range(32)), ct)
