"""Tests for multiplicative and exponential ElGamal over QR_p."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import elgamal, groups
from repro.errors import DecryptionError, EncryptionError, KeyError_


@pytest.fixture(scope="module")
def group():
    return groups.commutative_group(128)


@pytest.fixture(scope="module")
def key(group):
    return elgamal.generate_keypair(group)


class TestMultiplicative:
    def test_round_trip(self, group, key):
        message = group.random_element()
        ct = elgamal.encrypt(key.public_key, message)
        assert elgamal.decrypt(key, ct) == message

    def test_message_must_be_group_element(self, group, key):
        non_residue = 2
        while group.contains(non_residue):
            non_residue += 1
        with pytest.raises(EncryptionError):
            elgamal.encrypt(key.public_key, non_residue)

    def test_multiplicative_homomorphism(self, group, key):
        a, b = group.random_element(), group.random_element()
        product = elgamal.multiply(
            elgamal.encrypt(key.public_key, a), elgamal.encrypt(key.public_key, b)
        )
        assert elgamal.decrypt(key, product) == a * b % group.p

    def test_probabilistic(self, group, key):
        m = group.random_element()
        c1 = elgamal.encrypt(key.public_key, m)
        c2 = elgamal.encrypt(key.public_key, m)
        assert (c1.c1, c1.c2) != (c2.c1, c2.c2)

    def test_wrong_key_rejected(self, group, key):
        other = elgamal.generate_keypair(group)
        ct = elgamal.encrypt(other.public_key, group.random_element())
        with pytest.raises(KeyError_):
            elgamal.decrypt(key, ct)

    def test_mixing_keys_in_multiply_rejected(self, group, key):
        other = elgamal.generate_keypair(group)
        with pytest.raises(KeyError_):
            elgamal.multiply(
                elgamal.encrypt(key.public_key, group.random_element()),
                elgamal.encrypt(other.public_key, group.random_element()),
            )


class TestExponential:
    def test_round_trip_small(self, key):
        ct = elgamal.encrypt_exponential(key.public_key, 123)
        assert elgamal.decrypt_exponential(key, ct, 1000) == 123

    def test_zero(self, key):
        ct = elgamal.encrypt_exponential(key.public_key, 0)
        assert elgamal.decrypt_exponential(key, ct, 10) == 0

    @given(st.integers(min_value=0, max_value=500),
           st.integers(min_value=0, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_additive_homomorphism(self, key, a, b):
        total = elgamal.add(
            elgamal.encrypt_exponential(key.public_key, a),
            elgamal.encrypt_exponential(key.public_key, b),
        )
        assert elgamal.decrypt_exponential(key, total, 1000) == a + b

    def test_scalar_multiply(self, key):
        ct = elgamal.scalar_multiply(
            elgamal.encrypt_exponential(key.public_key, 6), 7
        )
        assert elgamal.decrypt_exponential(key, ct, 100) == 42

    def test_bound_exceeded_raises(self, key):
        ct = elgamal.encrypt_exponential(key.public_key, 5000)
        with pytest.raises(DecryptionError):
            elgamal.decrypt_exponential(key, ct, 100)

    def test_out_of_range_message(self, group, key):
        with pytest.raises(EncryptionError):
            elgamal.encrypt_exponential(key.public_key, group.q)
