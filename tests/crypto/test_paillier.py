"""Tests for the Paillier cryptosystem and its homomorphic laws."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import paillier
from repro.errors import DecryptionError, EncryptionError, KeyError_, ParameterError


@pytest.fixture(scope="module")
def key():
    return paillier.generate_keypair(256)


@pytest.fixture(scope="module")
def pk(key):
    return key.public_key


class TestBasics:
    def test_round_trip(self, key, pk):
        for m in [0, 1, 42, pk.n - 1]:
            assert paillier.decrypt(key, paillier.encrypt(pk, m)) == m

    def test_out_of_range_plaintexts(self, pk):
        with pytest.raises(EncryptionError):
            paillier.encrypt(pk, -1)
        with pytest.raises(EncryptionError):
            paillier.encrypt(pk, pk.n)

    def test_probabilistic(self, pk):
        assert paillier.encrypt(pk, 7).value != paillier.encrypt(pk, 7).value

    def test_explicit_randomness_deterministic(self, key, pk):
        c1 = paillier.encrypt(pk, 7, randomness=12345)
        c2 = paillier.encrypt(pk, 7, randomness=12345)
        assert c1.value == c2.value
        assert paillier.decrypt(key, c1) == 7

    def test_bad_randomness_rejected(self, pk):
        with pytest.raises(EncryptionError):
            paillier.encrypt(pk, 7, randomness=0)

    def test_keygen_too_small(self):
        with pytest.raises(ParameterError):
            paillier.generate_keypair(32)

    def test_decrypt_wrong_key(self, key, pk):
        other = paillier.generate_keypair(256)
        ct = paillier.encrypt(other.public_key, 5)
        with pytest.raises(KeyError_):
            paillier.decrypt(key, ct)

    def test_decrypt_invalid_ciphertext(self, key, pk):
        bogus = paillier.PaillierCiphertext(0, pk)
        with pytest.raises(DecryptionError):
            paillier.decrypt(key, bogus)


class TestHomomorphicLaws:
    @given(st.integers(min_value=0, max_value=10**12),
           st.integers(min_value=0, max_value=10**12))
    @settings(max_examples=25, deadline=None)
    def test_additive_homomorphism(self, key, pk, a, b):
        total = paillier.add(paillier.encrypt(pk, a), paillier.encrypt(pk, b))
        assert paillier.decrypt(key, total) == (a + b) % pk.n

    @given(st.integers(min_value=0, max_value=10**9),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_scalar_multiplication(self, key, pk, m, gamma):
        ct = paillier.scalar_multiply(paillier.encrypt(pk, m), gamma)
        assert paillier.decrypt(key, ct) == m * gamma % pk.n

    @given(st.integers(min_value=0, max_value=10**9),
           st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=25, deadline=None)
    def test_add_plain(self, key, pk, m, addend):
        ct = paillier.add_plain(paillier.encrypt(pk, m), addend)
        assert paillier.decrypt(key, ct) == (m + addend) % pk.n

    def test_addition_wraps_modulo_n(self, key, pk):
        ct = paillier.add(
            paillier.encrypt(pk, pk.n - 1), paillier.encrypt(pk, 2)
        )
        assert paillier.decrypt(key, ct) == 1

    def test_negate(self, key, pk):
        ct = paillier.negate(paillier.encrypt(pk, 5))
        assert paillier.decrypt(key, ct) == pk.n - 5

    def test_operator_sugar(self, key, pk):
        total = paillier.encrypt(pk, 20) + paillier.encrypt(pk, 22)
        assert paillier.decrypt(key, total) == 42
        assert paillier.decrypt(key, 2 * paillier.encrypt(pk, 21)) == 42

    def test_mixing_keys_rejected(self, pk):
        other = paillier.generate_keypair(256).public_key
        with pytest.raises(KeyError_):
            paillier.add(paillier.encrypt(pk, 1), paillier.encrypt(other, 1))

    def test_encrypt_zero_is_identity(self, key, pk):
        ct = paillier.add(paillier.encrypt(pk, 37), paillier.encrypt_zero(pk))
        assert paillier.decrypt(key, ct) == 37


class TestCRTDecryption:
    """CRT decryption (engine fast path) must agree with Carmichael."""

    def test_keypair_retains_factorisation(self, key):
        assert key.has_factorisation
        assert key.p * key.q == key.public_key.n

    def test_roundtrip_edge_values(self, key, pk):
        for m in [0, 1, 2, pk.n - 1]:
            ct = paillier.encrypt(pk, m)
            assert paillier.decrypt_crt(key, ct) == m
            assert paillier.decrypt_carmichael(key, ct) == m

    @given(st.integers(min_value=0))
    @settings(max_examples=40, deadline=None)
    def test_crt_matches_carmichael(self, key, pk, raw):
        ct = paillier.encrypt(pk, raw % pk.n)
        assert paillier.decrypt_crt(key, ct) == paillier.decrypt_carmichael(
            key, ct
        )

    @given(st.integers(min_value=0, max_value=10**12),
           st.integers(min_value=0, max_value=10**12),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_crt_matches_carmichael_after_homomorphic_ops(
        self, key, pk, a, b, gamma
    ):
        ct = paillier.rerandomize(
            paillier.negate(
                paillier.add_plain(
                    paillier.scalar_multiply(
                        paillier.add(
                            paillier.encrypt(pk, a), paillier.encrypt(pk, b)
                        ),
                        gamma,
                    ),
                    b,
                )
            )
        )
        crt = paillier.decrypt_crt(key, ct)
        assert crt == paillier.decrypt_carmichael(key, ct)
        assert crt == (-((a + b) * gamma + b)) % pk.n

    def test_dispatch_prefers_crt_when_factors_known(self, key, pk):
        # decrypt() auto-dispatches; both paths must agree with it.
        ct = paillier.encrypt(pk, 12345)
        assert paillier.decrypt(key, ct) == 12345

    def test_legacy_key_without_factors_still_decrypts(self, key, pk):
        # Backward compatibility: keys built the pre-CRT way (no p, q)
        # fall back to the Carmichael path transparently.
        legacy = paillier.PaillierPrivateKey(
            public_key=pk, lam=key.lam, mu=key.mu
        )
        assert not legacy.has_factorisation
        ct = paillier.encrypt(pk, 777)
        assert paillier.decrypt(legacy, ct) == 777
        with pytest.raises(ParameterError):
            paillier.decrypt_crt(legacy, ct)


class TestRerandomization:
    def test_preserves_plaintext_changes_ciphertext(self, key, pk):
        original = paillier.encrypt(pk, 99)
        refreshed = paillier.rerandomize(original)
        assert refreshed.value != original.value
        assert paillier.decrypt(key, refreshed) == 99

    def test_unlinkable_values(self, pk):
        base = paillier.encrypt(pk, 1)
        seen = {paillier.rerandomize(base).value for _ in range(10)}
        assert len(seen) == 10
