"""Tests for JSON key/credential serialization."""

import pytest

from repro.crypto import paillier, serialization
from repro.errors import EncodingError


class TestRSA:
    def test_public_round_trip(self, rsa_key):
        public = rsa_key.public_key()
        restored = serialization.rsa_public_from_dict(
            serialization.rsa_public_to_dict(public)
        )
        assert restored == public

    def test_private_round_trip(self, rsa_key):
        restored = serialization.rsa_private_from_dict(
            serialization.rsa_private_to_dict(rsa_key)
        )
        assert restored == rsa_key

    def test_private_still_works(self, rsa_key):
        from repro.crypto import rsa

        restored = serialization.rsa_private_from_dict(
            serialization.rsa_private_to_dict(rsa_key)
        )
        ct = rsa.oaep_encrypt(restored.public_key(), b"msg")
        assert rsa.oaep_decrypt(restored, ct) == b"msg"

    def test_kind_mismatch_rejected(self, rsa_key):
        payload = serialization.rsa_private_to_dict(rsa_key)
        with pytest.raises(EncodingError):
            serialization.rsa_public_from_dict(payload)

    def test_inconsistent_factors_rejected(self, rsa_key):
        payload = serialization.rsa_private_to_dict(rsa_key)
        payload["p"] = str(int(payload["p"]) + 2)
        with pytest.raises(EncodingError):
            serialization.rsa_private_from_dict(payload)


class TestPaillier:
    def test_round_trip_and_decrypt(self, paillier_key):
        restored = serialization.paillier_private_from_dict(
            serialization.paillier_private_to_dict(paillier_key)
        )
        ct = paillier.encrypt(restored.public_key, 42)
        assert paillier.decrypt(restored, ct) == 42

    def test_public_round_trip(self, paillier_key):
        public = paillier_key.public_key
        restored = serialization.paillier_public_from_dict(
            serialization.paillier_public_to_dict(public)
        )
        assert restored == public


class TestCredential:
    def test_round_trip_preserves_signature(self, ca, rsa_key):
        from repro.mediation.ca import verify_credential

        credential = ca.issue_credential(
            {("role", "x"), ("org", "y")}, rsa_key.public_key()
        )
        restored = serialization.credential_from_dict(
            serialization.credential_to_dict(credential)
        )
        assert restored.properties == credential.properties
        assert verify_credential(restored, ca.verification_key)


class TestJSONLayer:
    def test_dumps_loads(self, rsa_key):
        text = serialization.dumps(serialization.rsa_public_to_dict(
            rsa_key.public_key()
        ))
        payload = serialization.loads(text)
        assert payload["kind"] == "rsa-public"

    def test_invalid_json(self):
        with pytest.raises(EncodingError):
            serialization.loads("{nope")

    def test_missing_kind(self):
        with pytest.raises(EncodingError):
            serialization.loads('{"n": "3"}')

    def test_non_dict(self):
        with pytest.raises(EncodingError):
            serialization.loads("[1, 2]")
