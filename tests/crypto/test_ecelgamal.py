"""Tests for additively homomorphic EC-ElGamal."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import ecelgamal
from repro.crypto.ec import TINY
from repro.errors import DecryptionError, EncryptionError, KeyError_


@pytest.fixture(scope="module")
def key():
    return ecelgamal.generate_keypair(TINY)


class TestBasics:
    def test_round_trip(self, key):
        for m in (0, 1, 57, 500):
            ct = ecelgamal.encrypt(key.public_key, m)
            assert ecelgamal.decrypt(key, ct, 1000) == m

    def test_out_of_range_message(self, key):
        with pytest.raises(EncryptionError):
            ecelgamal.encrypt(key.public_key, TINY.n)
        with pytest.raises(EncryptionError):
            ecelgamal.encrypt(key.public_key, -1)

    def test_probabilistic(self, key):
        c1 = ecelgamal.encrypt(key.public_key, 9)
        c2 = ecelgamal.encrypt(key.public_key, 9)
        assert (c1.c1, c1.c2) != (c2.c1, c2.c2)

    def test_wrong_key_rejected(self, key):
        other = ecelgamal.generate_keypair(TINY)
        ct = ecelgamal.encrypt(other.public_key, 3)
        with pytest.raises(KeyError_):
            ecelgamal.decrypt(key, ct, 100)

    def test_dlog_bound_exceeded(self, key):
        ct = ecelgamal.encrypt(key.public_key, 900)
        with pytest.raises(DecryptionError):
            ecelgamal.decrypt(key, ct, 100)


class TestHomomorphism:
    @given(st.integers(min_value=0, max_value=400),
           st.integers(min_value=0, max_value=400))
    @settings(max_examples=20, deadline=None)
    def test_addition(self, key, a, b):
        total = ecelgamal.add(
            ecelgamal.encrypt(key.public_key, a),
            ecelgamal.encrypt(key.public_key, b),
        )
        assert ecelgamal.decrypt(key, total, 800) == a + b

    def test_scalar_multiplication(self, key):
        ct = ecelgamal.scalar_multiply(ecelgamal.encrypt(key.public_key, 6), 7)
        assert ecelgamal.decrypt(key, ct, 100) == 42

    def test_operator_sugar(self, key):
        total = ecelgamal.encrypt(key.public_key, 20) + ecelgamal.encrypt(
            key.public_key, 22
        )
        assert ecelgamal.decrypt(key, total, 100) == 42
        assert ecelgamal.decrypt(key, 2 * ecelgamal.encrypt(key.public_key, 21), 100) == 42

    def test_mixing_keys_rejected(self, key):
        other = ecelgamal.generate_keypair(TINY)
        with pytest.raises(KeyError_):
            ecelgamal.add(
                ecelgamal.encrypt(key.public_key, 1),
                ecelgamal.encrypt(other.public_key, 1),
            )
