"""Tests for the primitive-usage instrumentation."""

from repro.crypto import paillier, symmetric
from repro.crypto.instrumentation import count_primitives, record


class TestCounter:
    def test_records_inside_context(self):
        with count_primitives() as counter:
            record("hash.ideal")
            record("hash.ideal")
            record("commutative.encrypt", amount=3)
        assert counter.counts["hash.ideal"] == 2
        assert counter.counts["commutative.encrypt"] == 3

    def test_silent_outside_context(self):
        record("hash.ideal")  # must not raise, must not be visible anywhere
        with count_primitives() as counter:
            pass
        assert not counter.counts

    def test_nested_counters_both_observe(self):
        with count_primitives() as outer:
            record("a.x")
            with count_primitives() as inner:
                record("b.y")
            record("a.x")
        assert outer.counts == {"a.x": 2, "b.y": 1}
        assert inner.counts == {"b.y": 1}

    def test_families_aggregation(self):
        with count_primitives() as counter:
            record("paillier.encrypt", 4)
            record("paillier.add", 2)
            record("hash.ideal")
        assert counter.families() == {"paillier": 6, "hash": 1}

    def test_total_with_prefix(self):
        with count_primitives() as counter:
            record("paillier.encrypt", 4)
            record("paillier.add", 2)
            record("hash.ideal")
        assert counter.total("paillier.") == 6
        assert counter.total() == 7


class TestPrimitivesReport:
    def test_paillier_operations_recorded(self):
        with count_primitives() as counter:
            key = paillier.generate_keypair(256)
            ct = paillier.encrypt(key.public_key, 5)
            paillier.add(ct, ct)
            paillier.decrypt(key, ct)
        assert counter.counts["paillier.keygen"] == 1
        assert counter.counts["paillier.encrypt"] == 1
        assert counter.counts["paillier.add"] == 1
        assert counter.counts["paillier.decrypt"] == 1

    def test_symmetric_operations_recorded(self):
        with count_primitives() as counter:
            key = symmetric.generate_key()
            ct = symmetric.encrypt(key, b"x")
            symmetric.decrypt(key, ct)
        assert counter.counts["symmetric.encrypt"] == 1
        assert counter.counts["symmetric.decrypt"] == 1
        assert counter.counts["random.session_key"] == 1
