"""Tests for RSA-OAEP encryption and RSA-PSS signatures."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import rsa
from repro.errors import DecryptionError, EncryptionError, ParameterError


@pytest.fixture(scope="module")
def key(rsa_key):
    return rsa_key


class TestKeyGeneration:
    def test_modulus_size(self, key):
        assert key.n.bit_length() == 1024
        assert key.n == key.p * key.q

    def test_d_is_inverse(self, key):
        phi = (key.p - 1) * (key.q - 1)
        assert key.e * key.d % phi == 1

    def test_too_small_rejected(self):
        with pytest.raises(ParameterError):
            rsa.generate_keypair(256)


class TestOAEP:
    def test_round_trip(self, key):
        ct = rsa.oaep_encrypt(key.public_key(), b"secret message")
        assert rsa.oaep_decrypt(key, ct) == b"secret message"

    def test_empty_message(self, key):
        ct = rsa.oaep_encrypt(key.public_key(), b"")
        assert rsa.oaep_decrypt(key, ct) == b""

    def test_max_length_message(self, key):
        public = key.public_key()
        message = b"m" * public.max_message_bytes()
        assert rsa.oaep_decrypt(key, rsa.oaep_encrypt(public, message)) == message

    def test_oversized_message_rejected(self, key):
        public = key.public_key()
        with pytest.raises(EncryptionError):
            rsa.oaep_encrypt(public, b"m" * (public.max_message_bytes() + 1))

    def test_randomized(self, key):
        public = key.public_key()
        assert rsa.oaep_encrypt(public, b"x") != rsa.oaep_encrypt(public, b"x")

    def test_tampered_ciphertext_rejected(self, key):
        ct = bytearray(rsa.oaep_encrypt(key.public_key(), b"data"))
        ct[len(ct) // 2] ^= 0x01
        with pytest.raises(DecryptionError):
            rsa.oaep_decrypt(key, bytes(ct))

    def test_wrong_length_rejected(self, key):
        with pytest.raises(DecryptionError):
            rsa.oaep_decrypt(key, b"\x00" * 17)

    def test_out_of_range_rejected(self, key):
        blob = (key.n + 1).to_bytes(key.public_key().modulus_bytes, "big")
        with pytest.raises(DecryptionError):
            rsa.oaep_decrypt(key, blob)

    @given(st.binary(max_size=32))
    @settings(max_examples=25, deadline=None)
    def test_round_trip_property(self, key, message):
        ct = rsa.oaep_encrypt(key.public_key(), message)
        assert rsa.oaep_decrypt(key, ct) == message


class TestPSS:
    def test_sign_verify(self, key):
        signature = rsa.pss_sign(key, b"document")
        assert rsa.pss_verify(key.public_key(), b"document", signature)

    def test_wrong_message_fails(self, key):
        signature = rsa.pss_sign(key, b"document")
        assert not rsa.pss_verify(key.public_key(), b"other", signature)

    def test_tampered_signature_fails(self, key):
        signature = bytearray(rsa.pss_sign(key, b"document"))
        signature[5] ^= 0xFF
        assert not rsa.pss_verify(key.public_key(), b"document", bytes(signature))

    def test_wrong_key_fails(self, key):
        other = rsa.generate_keypair(1024)
        signature = rsa.pss_sign(other, b"document")
        assert not rsa.pss_verify(key.public_key(), b"document", signature)

    def test_signatures_randomized_but_both_valid(self, key):
        s1 = rsa.pss_sign(key, b"m")
        s2 = rsa.pss_sign(key, b"m")
        assert s1 != s2
        assert rsa.pss_verify(key.public_key(), b"m", s1)
        assert rsa.pss_verify(key.public_key(), b"m", s2)

    def test_wrong_length_signature(self, key):
        assert not rsa.pss_verify(key.public_key(), b"m", b"short")

    def test_verify_never_raises_on_garbage(self, key):
        garbage = b"\xff" * key.public_key().modulus_bytes
        assert rsa.pss_verify(key.public_key(), b"m", garbage) in (True, False)
