"""Tests for the precomputed safe-prime parameters."""

import pytest

from repro.crypto import groups
from repro.crypto.numtheory import is_safe_prime
from repro.errors import ParameterError


class TestKnownSafePrimes:
    @pytest.mark.parametrize("bits", sorted(groups.KNOWN_SAFE_PRIMES))
    def test_bit_lengths(self, bits):
        assert groups.KNOWN_SAFE_PRIMES[bits].bit_length() == bits

    @pytest.mark.parametrize("bits", [64, 128, 256])
    def test_are_safe_primes(self, bits):
        # Probabilistic verification of the shipped parameters (the
        # larger sizes are verified by the slow marker in CI-style runs).
        assert is_safe_prime(groups.KNOWN_SAFE_PRIMES[bits])

    def test_safe_prime_lookup(self):
        assert groups.safe_prime(128) == groups.KNOWN_SAFE_PRIMES[128]

    def test_safe_prime_generation_fallback(self):
        p = groups.safe_prime(40)
        assert p.bit_length() == 40
        assert is_safe_prime(p)

    def test_too_small_rejected(self):
        with pytest.raises(ParameterError):
            groups.safe_prime(8)

    def test_commutative_group_construction(self):
        group = groups.commutative_group(128)
        assert group.p == groups.KNOWN_SAFE_PRIMES[128]
        assert group.q == (group.p - 1) // 2
