"""Tests for elliptic-curve arithmetic (group laws, named curves)."""

import pytest

from repro.crypto.ec import P256, TINY, Curve, Point, brute_force_order
from repro.errors import ParameterError


class TestCurveDefinitions:
    def test_tiny_base_point_on_curve(self):
        assert TINY.contains(TINY.gx, TINY.gy)

    def test_tiny_order_is_correct(self):
        assert brute_force_order(TINY.generator) == TINY.n

    def test_p256_base_point_on_curve(self):
        assert P256.contains(P256.gx, P256.gy)

    def test_p256_base_point_order(self):
        # n * G = infinity is the defining property of the group order.
        assert (P256.n * P256.generator).is_infinity

    def test_singular_curve_rejected(self):
        with pytest.raises(ParameterError):
            Curve("bad", 10007, 0, 0, 1, 1, 1)

    def test_off_curve_point_rejected(self):
        with pytest.raises(ParameterError):
            Point(TINY, 1, 1)

    def test_half_infinity_rejected(self):
        with pytest.raises(ParameterError):
            Point(TINY, None, 5)


class TestGroupLaws:
    def test_identity(self):
        g = TINY.generator
        assert g + TINY.infinity == g
        assert TINY.infinity + g == g

    def test_inverse(self):
        g = TINY.generator
        assert (g + (-g)).is_infinity

    def test_commutativity(self):
        g = TINY.generator
        p, q = 3 * g, 7 * g
        assert p + q == q + p

    def test_associativity(self):
        g = TINY.generator
        a, b, c = 2 * g, 5 * g, 11 * g
        assert (a + b) + c == a + (b + c)

    def test_doubling_consistency(self):
        g = TINY.generator
        assert g + g == 2 * g

    def test_scalar_distributes(self):
        g = TINY.generator
        assert 5 * g + 8 * g == 13 * g

    def test_scalar_wraps_modulo_order(self):
        g = TINY.generator
        assert (TINY.n + 5) * g == 5 * g

    def test_zero_scalar(self):
        assert (0 * TINY.generator).is_infinity

    def test_subtraction(self):
        g = TINY.generator
        assert 9 * g - 4 * g == 5 * g

    def test_cross_curve_addition_rejected(self):
        with pytest.raises(ParameterError):
            TINY.generator + P256.generator

    def test_full_cycle(self):
        g = TINY.generator
        assert (TINY.n - 1) * g + g == TINY.infinity


class TestLiftX:
    def test_lift_generator_x(self):
        lifted = TINY.lift_x(TINY.gx)
        assert lifted is not None
        assert lifted.x == TINY.gx
        assert lifted.y in (TINY.gy, TINY.p - TINY.gy)

    def test_lift_nonresidue_returns_none(self):
        found_none = False
        for x in range(1, 200):
            if TINY.lift_x(x) is None:
                found_none = True
                break
        assert found_none

    def test_point_hash_and_equality(self):
        g = TINY.generator
        assert hash(2 * g) == hash(g + g)
        assert 2 * g in {g + g}
