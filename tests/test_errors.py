"""Tests for the exception hierarchy contract."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception",
        [
            errors.CryptoError,
            errors.RelationalError,
            errors.MediationError,
        ],
    )
    def test_subsystem_bases(self, exception):
        assert issubclass(exception, errors.ReproError)

    @pytest.mark.parametrize(
        "exception,base",
        [
            (errors.KeyError_, errors.CryptoError),
            (errors.ParameterError, errors.CryptoError),
            (errors.EncryptionError, errors.CryptoError),
            (errors.DecryptionError, errors.CryptoError),
            (errors.IntegrityError, errors.DecryptionError),
            (errors.EncodingError, errors.CryptoError),
            (errors.SchemaError, errors.RelationalError),
            (errors.QueryError, errors.RelationalError),
            (errors.PartitionError, errors.RelationalError),
            (errors.AccessDenied, errors.MediationError),
            (errors.CredentialError, errors.MediationError),
            (errors.NetworkError, errors.MediationError),
            (errors.ProtocolError, errors.MediationError),
        ],
    )
    def test_leaf_classification(self, exception, base):
        assert issubclass(exception, base)
        assert issubclass(exception, errors.ReproError)

    def test_catch_all_contract(self):
        """A caller catching ReproError catches every library failure."""
        try:
            raise errors.IntegrityError("tampered")
        except errors.ReproError as caught:
            assert "tampered" in str(caught)

    def test_keyerror_does_not_shadow_builtin(self):
        assert errors.KeyError_ is not KeyError
        assert not issubclass(errors.KeyError_, KeyError)
