"""Tests for the exception hierarchy contract.

Two contracts live here:

* **hierarchy** — every public error type sits under the right
  subsystem base and under :class:`~repro.errors.ReproError`;
* **coverage** — every public error type is actually *raisable* through
  a real library code path (the trigger registry below), so no error
  class can rot into dead taxonomy; and every
  :class:`~repro.errors.NetworkError` a TCP transport wait raises names
  the remote host, port, and the timeout budget that governed it.
"""

import socket
import threading
import time

import pytest

from repro import errors
from repro.crypto import paillier, symmetric
from repro.crypto.commutative import CommutativeGroup, CommutativeKey
from repro.crypto import serialization
from repro.deadline import check_deadline, deadline
from repro.faults import FaultInjector, FaultPlan, FaultRule, FaultyTransport
from repro.mediation.access_control import require
from repro.mediation.datasource import DataSource
from repro.mediation.network import Network
from repro.relational import sql
from repro.relational.partition import Partition
from repro.relational.relation import Relation
from repro.relational.schema import schema
from repro.storage import storage_from_spec
from repro.telemetry.metrics import MetricsRegistry
from repro.transport import RetryPolicy, TcpTransport, codec


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception",
        [
            errors.CryptoError,
            errors.RelationalError,
            errors.MediationError,
            errors.CodecError,
            errors.TelemetryError,
        ],
    )
    def test_subsystem_bases(self, exception):
        assert issubclass(exception, errors.ReproError)

    @pytest.mark.parametrize(
        "exception,base",
        [
            (errors.KeyError_, errors.CryptoError),
            (errors.ParameterError, errors.CryptoError),
            (errors.EncryptionError, errors.CryptoError),
            (errors.DecryptionError, errors.CryptoError),
            (errors.IntegrityError, errors.DecryptionError),
            (errors.EncodingError, errors.CryptoError),
            (errors.SchemaError, errors.RelationalError),
            (errors.QueryError, errors.RelationalError),
            (errors.PartitionError, errors.RelationalError),
            (errors.AccessDenied, errors.MediationError),
            (errors.CredentialError, errors.MediationError),
            (errors.NetworkError, errors.MediationError),
            (errors.ServerBusy, errors.NetworkError),
            (errors.DeadlineExceeded, errors.NetworkError),
            (errors.FaultInjectedError, errors.NetworkError),
            (errors.ProtocolError, errors.MediationError),
            (errors.ValueCodecError, errors.CodecError),
            (errors.ValueCodecError, errors.EncodingError),
            (errors.FrameCodecError, errors.CodecError),
            (errors.FrameCodecError, errors.NetworkError),
        ],
    )
    def test_leaf_classification(self, exception, base):
        assert issubclass(exception, base)
        assert issubclass(exception, errors.ReproError)

    def test_catch_all_contract(self):
        """A caller catching ReproError catches every library failure."""
        try:
            raise errors.IntegrityError("tampered")
        except errors.ReproError as caught:
            assert "tampered" in str(caught)

    def test_keyerror_does_not_shadow_builtin(self):
        assert errors.KeyError_ is not KeyError
        assert not issubclass(errors.KeyError_, KeyError)


# -- raisability: one real library trigger per public error type -------------

def _trigger_deadline_exceeded():
    with deadline(1e-6):
        time.sleep(0.002)
        check_deadline("taxonomy trigger")


def _trigger_fault_injected():
    transport = FaultyTransport(
        Network(),
        FaultInjector(
            FaultPlan(rules=(FaultRule(action="drop", max_triggers=0),))
        ),
    )
    transport.register("a")
    transport.register("b")
    transport.send("a", "b", "kind", None)


def _trigger_server_busy():
    transport = TcpTransport(
        retry=RetryPolicy(attempts=2, base_delay=0.01, max_delay=0.02),
        server_options={"max_sessions": 1},
    )
    try:
        transport.register("a")
        transport.open_session("first")   # fills the only session slot
        transport.open_session("second")  # refused: BUSY -> ServerBusy
    finally:
        transport.close()


def _trigger_integrity_error():
    key = symmetric.generate_key()
    ciphertext = bytearray(symmetric.encrypt(key, b"payload"))
    ciphertext[-1] ^= 0xFF  # garble the MAC tag
    symmetric.decrypt(key, bytes(ciphertext))


#: error type -> a zero-argument callable exercising the real code path
#: that raises exactly that type.
TRIGGERS = {
    errors.KeyError_: lambda: CommutativeKey(CommutativeGroup(p=23), exponent=0),
    errors.ParameterError: lambda: CommutativeGroup(p=4),
    errors.EncryptionError: lambda: paillier.encrypt(
        paillier.PaillierPublicKey(n=(1 << 64) + 13), (1 << 64) + 14
    ),
    errors.DecryptionError: lambda: symmetric.decrypt(
        symmetric.generate_key(), b"short"
    ),
    errors.IntegrityError: _trigger_integrity_error,
    errors.EncodingError: lambda: serialization.loads("{not json"),
    errors.SchemaError: lambda: Relation(schema("R", k="int"), [("text",)]),
    errors.QueryError: lambda: sql.parse("select §§ from nowhere"),
    errors.PartitionError: lambda: Partition(frozenset()),
    errors.AccessDenied: lambda: require(("role", "admin")).evaluate(
        Relation(schema("R", k="int"), [(1,)]), []
    ),
    errors.CredentialError: lambda: DataSource(name="S1").private_key(),
    errors.NetworkError: lambda: Network().send("ghost", "b", "kind", None),
    errors.ServerBusy: _trigger_server_busy,
    errors.DeadlineExceeded: _trigger_deadline_exceeded,
    errors.FaultInjectedError: _trigger_fault_injected,
    errors.ProtocolError: lambda: FaultRule(action="explode"),
    errors.ValueCodecError: lambda: codec.decode_value(b"\xff"),
    errors.FrameCodecError: lambda: codec.parse_frame_header(b"XXXXXXXX"),
    errors.TelemetryError: lambda: MetricsRegistry().counter("bad name!"),
    errors.StorageError: lambda: storage_from_spec("postgres:not-yet"),
}


def public_error_types() -> list[type]:
    return [
        obj
        for name, obj in vars(errors).items()
        if isinstance(obj, type)
        and issubclass(obj, errors.ReproError)
        and not name.startswith("_")
    ]


class TestEveryErrorTypeIsRaised:
    @pytest.mark.parametrize(
        "exception", list(TRIGGERS), ids=lambda e: e.__name__
    )
    def test_trigger_raises_exactly_that_type(self, exception):
        with pytest.raises(exception) as excinfo:
            TRIGGERS[exception]()
        assert type(excinfo.value) is exception

    def test_taxonomy_is_fully_covered(self):
        """Every public error type is triggered directly or — for the
        subsystem base classes, which are never raised as-is — via a
        triggered strict subclass."""
        for exception in public_error_types():
            directly = exception in TRIGGERS
            via_subclass = any(
                issubclass(triggered, exception) and triggered is not exception
                for triggered in TRIGGERS
            )
            assert directly or via_subclass, (
                f"{exception.__name__} is never raised by any test trigger"
            )


# -- the NetworkError message contract on TCP waits ---------------------------

FAST = RetryPolicy(
    attempts=2, base_delay=0.01, max_delay=0.02, connect_timeout=0.3,
    io_timeout=0.3,
)


def unused_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class SilentListener:
    """Accepts connections, reads, and never answers — the dead peer
    behind every acknowledgement-timeout message."""

    def __init__(self) -> None:
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen()
        self.port = self._listener.getsockname()[1]
        self._alive = True
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while self._alive:
            try:
                connection, _ = self._listener.accept()
            except OSError:
                return
            connection.settimeout(0.1)
            while self._alive:
                try:
                    if not connection.recv(4096):
                        break
                except socket.timeout:
                    continue
                except OSError:
                    break

    def close(self) -> None:
        self._alive = False
        self._listener.close()
        self._thread.join(timeout=2.0)


class TestNetworkErrorMessageContract:
    """Every NetworkError from a failed TCP wait names host, port, and
    the timeout budget — actionable without reading the configuration."""

    def assert_names_endpoint(self, message: str, port: int) -> None:
        assert "127.0.0.1" in message
        assert str(port) in message
        assert f"connect timeout {FAST.connect_timeout}s" in message
        assert f"io timeout {FAST.io_timeout}s" in message

    def test_refused_connection_names_host_port_and_budget(self):
        port = unused_port()
        transport = TcpTransport(
            endpoints={"S1": ("127.0.0.1", port)}, retry=FAST
        )
        try:
            with pytest.raises(errors.NetworkError) as excinfo:
                transport.register("S1")
        finally:
            transport.close()
        self.assert_names_endpoint(str(excinfo.value), port)

    def test_silent_peer_timeout_names_host_port_and_budget(self):
        listener = SilentListener()
        transport = TcpTransport(
            endpoints={"S1": ("127.0.0.1", listener.port)}, retry=FAST
        )
        try:
            with pytest.raises(errors.NetworkError) as excinfo:
                transport.register("S1")
        finally:
            transport.close()
            listener.close()
        message = str(excinfo.value)
        assert "timed out" in message
        self.assert_names_endpoint(message, listener.port)
