"""Tests for the two-party baseline protocols ([1], [12])."""

import pytest

from repro.baselines import (
    two_party_equijoin,
    two_party_intersection,
    two_party_private_matching,
)
from repro.relational.algebra import natural_join
from repro.relational.relation import Relation
from repro.relational.schema import schema

S_R = schema("VR", k="int", a="string")
S_S = schema("VS", k="int", b="string")

R_RELATION = Relation(S_R, [(1, "a1"), (2, "a2"), (2, "a2b"), (3, "a3")])
S_RELATION = Relation(S_S, [(2, "b2"), (3, "b3"), (4, "b4")])


class TestAgrawalIntersection:
    def test_basic(self):
        result = two_party_intersection(
            {(1,), (2,), (3,)}, {(2,), (3,), (4,)}
        )
        assert result.intersection == ((2,), (3,))

    def test_empty_intersection(self):
        result = two_party_intersection({(1,)}, {(9,)})
        assert result.intersection == ()

    def test_identical_sets(self):
        keys = {(1,), (7,), (9,)}
        result = two_party_intersection(keys, keys)
        assert set(result.intersection) == keys

    def test_string_keys(self):
        result = two_party_intersection(
            {("ada",), ("bob",)}, {("bob",), ("eve",)}
        )
        assert result.intersection == (("bob",),)

    def test_cardinalities_disclosed(self):
        result = two_party_intersection({(1,), (2,)}, {(2,), (3,), (4,)})
        assert result.receiver_set_size == 2
        assert result.sender_set_size == 3

    def test_transcript_has_three_messages(self):
        result = two_party_intersection({(1,)}, {(1,)})
        kinds = [m.kind for m in result.network.transcript]
        assert kinds == [
            "blinded_set", "blinded_set", "double_encrypted_pairs",
        ]


class TestAgrawalEquijoin:
    def test_matches_reference_join(self):
        result = two_party_equijoin(R_RELATION, S_RELATION, ("k",))
        assert result.joined == natural_join(R_RELATION, S_RELATION)
        assert result.intersection == ((2,), (3,))

    def test_empty_join(self):
        disjoint = Relation(S_S, [(9, "b9")])
        result = two_party_equijoin(R_RELATION, disjoint, ("k",))
        assert len(result.joined) == 0

    def test_unmatched_sender_values_stay_sealed(self):
        """The receiver's view contains the sender's unmatched tuple sets
        only as unopened ciphertext: the plaintext never appears."""
        from repro.analysis.views import view_material

        result = two_party_equijoin(R_RELATION, S_RELATION, ("k",))
        receiver_view = result.network.view("receiver")
        material = view_material(receiver_view)
        assert b"b4" not in material  # value 4 did not match

    def test_receiver_learns_intersection_values(self):
        """The key trust difference to the mediated protocol: the
        *receiver party* (a datasource role) learns the shared values."""
        result = two_party_equijoin(R_RELATION, S_RELATION, ("k",))
        assert result.intersection  # plaintext join keys at the receiver


class TestFNPPrivateMatching:
    @pytest.fixture(scope="class")
    def scheme(self, paillier_scheme):
        return paillier_scheme

    def test_basic_matching(self, scheme):
        result = two_party_private_matching(
            scheme,
            {(1,), (2,), (3,)},
            {(2,): b"payload-2", (4,): b"payload-4"},
        )
        assert set(result.matches) == {(2,)}
        assert result.matches[(2,)] == b"payload-2"

    def test_no_payload(self, scheme):
        result = two_party_private_matching(
            scheme, {(5,)}, {(5,): None, (6,): None}
        )
        assert result.matches == {(5,): None}

    def test_empty_intersection(self, scheme):
        result = two_party_private_matching(
            scheme, {(1,)}, {(2,): b"x"}
        )
        assert result.matches == {}

    def test_sender_learns_only_degree(self, scheme):
        result = two_party_private_matching(
            scheme, {(1,), (2,)}, {(1,): b"x"}
        )
        coefficient_messages = [
            m for m in result.network.transcript
            if m.kind == "encrypted_coefficients"
        ]
        # Degree (= chooser set size) is visible; nothing else is sent
        # from chooser to sender beyond the public key.
        assert len(coefficient_messages[0].body) == 3  # degree 2 + 1

    def test_unmatched_payloads_unrecoverable(self, scheme):
        result = two_party_private_matching(
            scheme, {(1,)}, {(2,): b"secret-payload"}
        )
        assert not result.matches

    def test_string_keys_with_payloads(self, scheme):
        result = two_party_private_matching(
            scheme,
            {("ada",), ("eve",)},
            {("ada",): b"record-ada", ("bob",): b"record-bob"},
        )
        assert result.matches == {("ada",): b"record-ada"}


class TestBaselineProperties:
    """Hypothesis coverage of the two-party protocols."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    keys = st.sets(
        st.tuples(st.integers(min_value=0, max_value=30)), max_size=10
    )

    @given(receiver=keys, sender=keys)
    @settings(max_examples=15, deadline=None)
    def test_intersection_exact(self, receiver, sender):
        result = two_party_intersection(receiver, sender)
        assert set(result.intersection) == receiver & sender

    @given(
        rows_r=st.lists(
            st.tuples(st.integers(0, 8), st.text(max_size=3)), max_size=6
        ),
        rows_s=st.lists(
            st.tuples(st.integers(0, 8), st.text(max_size=3)), max_size=6
        ),
    )
    @settings(max_examples=10, deadline=None)
    def test_equijoin_matches_reference(self, rows_r, rows_s):
        r = Relation(S_R, rows_r)
        s = Relation(S_S, rows_s)
        result = two_party_equijoin(r, s, ("k",))
        assert result.joined == natural_join(r, s)


class TestBaselineVsMediated:
    """The structural comparison the baselines exist for."""

    def test_mediated_client_never_sees_source_sets(self, ca, client, workload):
        """In the two-party baseline the receiver (a data party) learns
        the intersection *values*; in the mediated protocol the matching
        party (the mediator) learns only counts."""
        from repro import Federation, run_join_query
        from repro.analysis.leakage import analyze
        from repro.mediation.access_control import allow_all

        federation = Federation(ca=ca)
        federation.add_source("S1", [(workload.relation_1, allow_all())])
        federation.add_source("S2", [(workload.relation_2, allow_all())])
        federation.attach_client(client)
        result = run_join_query(
            federation, "select * from R1 natural join R2",
            protocol="commutative",
        )
        report = analyze(result)
        # Counts only: every mediator_learns entry is an integer.
        assert all(isinstance(v, int) for v in report.mediator_learns.values())

    def test_same_machinery_same_matches(self):
        """Baseline and mediated matching agree on the intersection."""
        keys_r = {(k,) for k in R_RELATION.active_domain("k")}
        keys_s = {(k,) for k in S_RELATION.active_domain("k")}
        baseline = two_party_intersection(keys_r, keys_s)
        assert set(baseline.intersection) == keys_r & keys_s
