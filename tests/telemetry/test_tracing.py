"""Tests for the span model, the tracer, and context propagation."""

import threading

import pytest

from repro.errors import TelemetryError
from repro.telemetry.tracing import (
    Span,
    SpanContext,
    Tracer,
    current_context,
    current_span,
    get_tracer,
    new_span_id,
    new_trace_id,
    span,
    use_tracer,
)


class TestIdentifiers:
    def test_sizes_and_uniqueness(self):
        trace_ids = {new_trace_id() for _ in range(64)}
        span_ids = {new_span_id() for _ in range(64)}
        assert len(trace_ids) == 64 and len(span_ids) == 64
        assert all(len(t) == 32 for t in trace_ids)
        assert all(len(s) == 16 for s in span_ids)

    def test_ids_do_not_touch_module_random_state(self):
        import random

        random.seed(42)
        expected = random.Random(42).random()
        new_trace_id()
        new_span_id()
        assert random.random() == expected


class TestSpanContext:
    def test_wire_round_trip(self):
        context = SpanContext(trace_id="t" * 32, span_id="s" * 16)
        assert SpanContext.from_wire(context.to_wire()) == context

    @pytest.mark.parametrize(
        "raw", [None, (), ("only-one",), ("a", 2), ("", "b"), "ab", 5]
    )
    def test_from_wire_tolerates_garbage(self, raw):
        assert SpanContext.from_wire(raw) is None


class TestTracer:
    def test_nesting_follows_the_call_stack(self):
        tracer = Tracer()
        with tracer.span("outer", "client") as outer:
            assert current_span() is outer
            with tracer.span("inner", "client") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        assert current_span() is None
        assert tracer.children_of(outer.span_id) == [inner]

    def test_root_span_uses_tracer_trace_id(self):
        tracer = Tracer()
        with tracer.span("root", "client") as root:
            pass
        assert root.trace_id == tracer.trace_id
        assert root.parent_id is None

    def test_explicit_parent_overrides_ambient_and_sets_trace(self):
        tracer = Tracer()
        remote = SpanContext(trace_id="f" * 32, span_id="e" * 16)
        with tracer.span("recv:x", "S1", parent=remote) as adopted:
            pass
        assert adopted.trace_id == remote.trace_id
        assert adopted.parent_id == remote.span_id

    def test_exception_marks_error_and_reraises(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("bad", "client"):
                raise ValueError("boom")
        (bad,) = tracer.find("bad")
        assert bad.status == "error"
        assert bad.seconds >= 0.0
        assert current_span() is None

    def test_durations_are_recorded(self):
        tracer = Tracer()
        with tracer.span("work", "client"):
            pass
        (work,) = tracer.find("work")
        assert work.seconds >= 0.0
        assert work.end >= work.start

    def test_adopt_and_queries(self):
        tracer = Tracer()
        foreign = Span(
            trace_id=tracer.trace_id,
            span_id=new_span_id(),
            parent_id=None,
            name="remote",
            party="S2",
            start=1.0,
            seconds=0.5,
        )
        tracer.adopt([foreign])
        assert tracer.parties() == {"S2"}
        assert tracer.trace_ids() == {tracer.trace_id}
        assert tracer.find("remote") == [foreign]

    def test_thread_safety_of_collection(self):
        tracer = Tracer()

        def worker():
            for _ in range(50):
                with tracer.span("t", "p"):
                    pass

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(tracer.spans) == 200


class TestSpanSerialization:
    def test_dict_round_trip(self):
        tracer = Tracer()
        with tracer.span("step", "S1", attributes={"items": 3}) as opened:
            pass
        restored = Span.from_dict(opened.to_dict())
        assert restored.span_id == opened.span_id
        assert restored.attributes == {"items": 3}
        assert restored.seconds == opened.seconds

    def test_malformed_record_raises(self):
        with pytest.raises(TelemetryError):
            Span.from_dict({"name": "missing-everything"})


class TestInstallation:
    def test_module_span_is_noop_without_tracer(self):
        assert get_tracer() is None
        with span("anything", "client") as opened:
            assert opened is None
        assert current_context() is None

    def test_module_span_records_when_installed(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("step", "client", items=2) as opened:
                assert opened is not None
                assert current_context() == opened.context()
        assert get_tracer() is None
        assert tracer.find("step")[0].attributes == {"items": 2}
