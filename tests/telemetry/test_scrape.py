"""Tests for the live Prometheus scrape endpoint and exporter edge cases."""

import asyncio
import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry.exporters import (
    prometheus_exposition,
    registry_snapshot_json,
    validate_exposition,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.scrape import (
    EXPOSITION_CONTENT_TYPE,
    MetricsScrapeServer,
)


def http_get(server_render, path, method="GET"):
    """Start a scrape server, issue one raw HTTP request, tear down."""

    async def scenario():
        server = MetricsScrapeServer(server_render)
        host, port = await server.start()
        try:
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode()
            )
            await writer.drain()
            response = await asyncio.wait_for(reader.read(), timeout=5)
            writer.close()
            return response.decode()
        finally:
            await server.stop()

    return asyncio.run(scenario())


class TestMetricsScrapeServer:
    def test_serves_live_exposition(self):
        registry = MetricsRegistry()
        registry.counter("repro_scrapes_total").inc(3)
        response = http_get(
            lambda: prometheus_exposition(registry), "/metrics"
        )
        headers, body = response.split("\r\n\r\n", 1)
        assert headers.startswith("HTTP/1.1 200 OK")
        assert f"Content-Type: {EXPOSITION_CONTENT_TYPE}" in headers
        assert "repro_scrapes_total 3" in body
        assert validate_exposition(body) == []

    def test_render_runs_per_request(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_live_total")

        async def scenario():
            server = MetricsScrapeServer(
                lambda: prometheus_exposition(registry)
            )
            host, port = await server.start()
            try:
                bodies = []
                for _ in range(2):
                    counter.inc()
                    reader, writer = await asyncio.open_connection(host, port)
                    writer.write(b"GET /metrics HTTP/1.1\r\n\r\n")
                    await writer.drain()
                    bodies.append((await reader.read()).decode())
                    writer.close()
                return bodies
            finally:
                await server.stop()

        first, second = asyncio.run(scenario())
        assert "repro_live_total 1" in first
        assert "repro_live_total 2" in second

    def test_unknown_path_is_404(self):
        response = http_get(lambda: "", "/admin")
        assert response.startswith("HTTP/1.1 404")

    def test_non_get_is_405(self):
        response = http_get(lambda: "", "/metrics", method="POST")
        assert response.startswith("HTTP/1.1 405")

    def test_render_failure_is_500_not_a_crash(self):
        def broken():
            raise RuntimeError("registry gone")

        response = http_get(broken, "/metrics")
        assert response.startswith("HTTP/1.1 500")


class TestEmptyRegistrySnapshots:
    def test_snapshot_and_json_of_empty_registry(self):
        registry = MetricsRegistry()
        assert registry.snapshot() == {}
        assert json.loads(registry_snapshot_json(registry)) == {}

    def test_empty_exposition_is_valid(self):
        exposition = prometheus_exposition(MetricsRegistry())
        assert validate_exposition(exposition) == []

    def test_merging_an_empty_snapshot_is_a_noop(self):
        registry = MetricsRegistry()
        registry.merge({})
        assert registry.snapshot() == {}


class TestSnapshotMergeAcrossCollectors:
    """Harvesting endpoint collectors folds overlapping names together."""

    def endpoint_registry(self, party, sends):
        registry = MetricsRegistry()
        registry.counter(
            "repro_messages_total", {"party": party}, help_text="msgs"
        ).inc(sends)
        registry.counter("repro_runs_total").inc(1)
        registry.gauge("repro_inflight").set(sends)
        registry.histogram(
            "repro_step_seconds", buckets=(0.1, 1.0)
        ).observe(0.05)
        return registry

    def test_overlapping_counters_add_disjoint_labels_coexist(self):
        merged = MetricsRegistry()
        merged.merge(self.endpoint_registry("S1", 4).snapshot())
        merged.merge(self.endpoint_registry("S2", 6).snapshot())
        # Same name, same labels: totals add.
        assert merged.value("repro_runs_total") == 2
        # Same name, disjoint labels: children coexist.
        assert merged.value("repro_messages_total", {"party": "S1"}) == 4
        assert merged.value("repro_messages_total", {"party": "S2"}) == 6
        assert merged.total("repro_messages_total") == 10

    def test_histograms_add_and_gauges_take_last_value(self):
        merged = MetricsRegistry()
        merged.merge(self.endpoint_registry("S1", 4).snapshot())
        merged.merge(self.endpoint_registry("S2", 6).snapshot())
        histogram = merged.histogram(
            "repro_step_seconds", buckets=(0.1, 1.0)
        )
        assert histogram.count == 2
        assert merged.value("repro_inflight") == 6  # last write wins

    def test_merged_exposition_stays_valid(self):
        merged = MetricsRegistry()
        merged.merge(self.endpoint_registry("S1", 4).snapshot())
        merged.merge(self.endpoint_registry("S2", 6).snapshot())
        assert validate_exposition(prometheus_exposition(merged)) == []

    def test_incompatible_bucket_layouts_rejected(self):
        merged = MetricsRegistry()
        merged.histogram("repro_step_seconds", buckets=(0.5,)).observe(0.1)
        with pytest.raises(TelemetryError):
            merged.merge(self.endpoint_registry("S1", 1).snapshot())

    def test_unknown_kind_rejected(self):
        with pytest.raises(TelemetryError):
            MetricsRegistry().merge({"repro_x": {"kind": "summary"}})
