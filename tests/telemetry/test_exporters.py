"""Tests for the Chrome-trace, Prometheus, and JSON exporters."""

import json

from repro.telemetry.exporters import (
    chrome_trace,
    prometheus_exposition,
    registry_snapshot_json,
    validate_chrome_trace,
    validate_exposition,
    write_chrome_trace,
    write_metrics,
)
from repro.telemetry.logsetup import configure_logging, parse_level, party_logger
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import Tracer


def sample_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("run", "client"):
        with tracer.span("step", "S1", attributes={"items": 2}):
            pass
    return tracer


def sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter(
        "repro_demo_ops_total", {"op": 'quo"ted\\'}, help_text="demo"
    ).inc(3)
    registry.gauge("repro_demo_level").set(1.5)
    registry.histogram("repro_demo_seconds", {"step": "s"}).observe(0.02)
    return registry


class TestChromeTrace:
    def test_structure_and_validation(self):
        tracer = sample_tracer()
        document = chrome_trace(tracer.spans)
        assert validate_chrome_trace(document) == []
        complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
        metadata = [e for e in document["traceEvents"] if e["ph"] == "M"]
        assert {e["name"] for e in complete} == {"run", "step"}
        assert {e["args"]["name"] for e in metadata} == {"client", "S1"}
        # Parties map to distinct pids.
        assert len({e["pid"] for e in metadata}) == 2

    def test_parent_edges_preserved(self):
        tracer = sample_tracer()
        document = chrome_trace(tracer.spans)
        by_name = {
            e["name"]: e for e in document["traceEvents"] if e["ph"] == "X"
        }
        assert (
            by_name["step"]["args"]["parent_id"]
            == by_name["run"]["args"]["span_id"]
        )

    def test_validator_flags_dangling_parent(self):
        tracer = sample_tracer()
        document = chrome_trace(tracer.spans)
        for event in document["traceEvents"]:
            if event["ph"] == "X" and event["name"] == "step":
                event["args"]["parent_id"] = "deadbeef"
        assert any(
            "parent_id" in problem
            for problem in validate_chrome_trace(document)
        )

    def test_write_is_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), sample_tracer().spans)
        document = json.loads(path.read_text())
        assert validate_chrome_trace(document) == []


class TestPrometheus:
    def test_exposition_lints_clean(self):
        text = prometheus_exposition(sample_registry())
        assert validate_exposition(text) == []
        assert "# TYPE repro_demo_ops_total counter" in text
        assert "# TYPE repro_demo_seconds histogram" in text
        assert 'le="+Inf"' in text

    def test_label_escaping(self):
        text = prometheus_exposition(sample_registry())
        assert 'op="quo\\"ted\\\\"' in text

    def test_lint_catches_missing_type(self):
        assert validate_exposition("repro_x_total 3\n")

    def test_lint_catches_counter_without_total(self):
        bad = "# TYPE repro_x counter\nrepro_x 3\n"
        assert any("_total" in p for p in validate_exposition(bad))

    def test_lint_catches_decreasing_buckets(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="1"} 2\n'
            'h_bucket{le="+Inf"} 2\n'
            "h_sum 1\n"
            "h_count 2\n"
        )
        assert any("decrease" in p for p in validate_exposition(bad))

    def test_lint_catches_inf_count_mismatch(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 1\n'
            'h_bucket{le="+Inf"} 1\n'
            "h_sum 1\n"
            "h_count 5\n"
        )
        assert any("_count" in p for p in validate_exposition(bad))

    def test_empty_registry_renders_empty(self):
        assert prometheus_exposition(MetricsRegistry()) == ""
        assert validate_exposition("") == []


class TestWriteMetrics:
    def test_json_extension_gets_snapshot(self, tmp_path):
        path = tmp_path / "metrics.json"
        write_metrics(str(path), sample_registry())
        snapshot = json.loads(path.read_text())
        assert "repro_demo_ops_total" in snapshot

    def test_other_extension_gets_exposition(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_metrics(str(path), sample_registry())
        assert validate_exposition(path.read_text()) == []

    def test_snapshot_json_round_trips(self):
        registry = sample_registry()
        restored = json.loads(registry_snapshot_json(registry))
        other = MetricsRegistry()
        other.merge(restored)
        assert other.value("repro_demo_ops_total", {"op": 'quo"ted\\'}) == 3


class TestLogging:
    def test_parse_level(self):
        import logging

        assert parse_level("debug") == logging.DEBUG
        assert parse_level("WARNING") == logging.WARNING

    def test_unknown_level_raises(self):
        import pytest

        from repro.errors import TelemetryError

        with pytest.raises(TelemetryError):
            parse_level("chatty")

    def test_party_logger_namespacing_and_idempotent_setup(self):
        import logging

        configure_logging("info")
        configure_logging("debug")  # reconfigures, must not stack handlers
        log = party_logger("S1")
        assert log.name == "repro.party.S1"
        root = logging.getLogger("repro")
        marked = [
            h for h in root.handlers if getattr(h, "_repro_handler", False)
        ]
        assert len(marked) == 1
