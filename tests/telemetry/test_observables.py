"""Tests for the adversary's-eye observable traces."""

from collections import namedtuple

import pytest

from repro import run_join_query
from repro.errors import ProtocolError, TelemetryError
from repro.telemetry.observables import (
    MIN_SIZE_BUCKET,
    ObservableTrace,
    ObservedMessage,
    adversary_traces,
    detect_roles,
    latency_bucket,
    network_trace_from_records,
    observable_items,
    size_bucket,
)

QUERY = "select * from R1 natural join R2"


class TestSizeBucket:
    def test_floor_bucket_absorbs_small_messages(self):
        assert size_bucket(0) == MIN_SIZE_BUCKET
        assert size_bucket(1) == MIN_SIZE_BUCKET
        assert size_bucket(MIN_SIZE_BUCKET) == MIN_SIZE_BUCKET

    def test_powers_of_two_are_their_own_bucket(self):
        assert size_bucket(128) == 128
        assert size_bucket(4096) == 4096

    def test_one_past_a_boundary_moves_up(self):
        assert size_bucket(MIN_SIZE_BUCKET + 1) == 2 * MIN_SIZE_BUCKET
        assert size_bucket(129) == 256


class TestObservableItems:
    def test_opaque_bodies_are_uncountable(self):
        assert observable_items(None) is None
        assert observable_items(b"ciphertext") is None
        assert observable_items("token") is None
        assert observable_items(42) is None

    def test_collections_expose_their_length(self):
        assert observable_items([1, 2, 3]) == 3
        assert observable_items((1,)) == 1

    def test_envelope_dict_reports_largest_collection(self):
        assert observable_items({"relation": [1, 2, 3], "meta": "x"}) == 3
        # No inner collection: the key count itself is the structure.
        assert observable_items({"a": 1, "b": 2}) == 2


class TestLatencyBucket:
    def test_maps_to_histogram_labels(self):
        assert latency_bucket(0.0).startswith("le_")
        assert latency_bucket(10_000.0) == "le_inf"


class TestAdversaryTraces:
    @pytest.fixture(scope="class")
    def result(self, ca, client, workload):
        from repro import Federation
        from repro.mediation.access_control import allow_all

        federation = Federation(ca=ca)
        federation.add_source("S1", [(workload.relation_1, allow_all())])
        federation.add_source("S2", [(workload.relation_2, allow_all())])
        federation.attach_client(client)
        return run_join_query(federation, QUERY, protocol="commutative")

    def test_one_trace_per_adversary(self, result):
        traces = adversary_traces(result)
        assert set(traces) == {
            "network", "mediator", "datasource:S1", "datasource:S2",
        }

    def test_client_identity_is_canonicalized(self, result):
        """The configured client name ('test-client' here) is deployment
        presentation, not observable structure — links must say 'client'
        so artifacts compare across differently-named clients."""
        traces = adversary_traces(result)
        links = {m.link for t in traces.values() for m in t.messages}
        assert any(link.startswith("client->") for link in links)
        assert not any("test-client" in link for link in links)

    def test_network_observer_sees_framing_not_bodies(self, result):
        network = adversary_traces(result)["network"]
        assert network.messages, "wire observer saw no traffic"
        assert all(m.direction == "wire" for m in network.messages)
        assert all(m.items is None for m in network.messages)
        assert network.result_sizes == {}

    def test_mediator_counts_ciphertext_structure(self, result):
        mediator = adversary_traces(result)["mediator"]
        directions = {m.direction for m in mediator.messages}
        assert directions <= {"sent", "received"}
        # Tuple-wise encryption leaves row counts observable.
        assert mediator.result_sizes

    def test_datasource_sees_only_its_own_link(self, result):
        s1 = adversary_traces(result)["datasource:S1"]
        assert s1.messages
        assert all(
            m.link.startswith("S1->") or m.link.endswith("->S1")
            for m in s1.messages
        )

    def test_roles_detected_from_transcript(self, result):
        roles = detect_roles(result.network)
        assert roles["mediator"] == "mediator"
        assert set(roles["sources"]) == {"S1", "S2"}

    def test_runner_attaches_observables_artifact(self, result):
        artifact = result.artifacts["observables"]
        assert set(artifact) >= {"network", "mediator"}
        assert artifact["network"]["messages"] > 0

    def test_detect_roles_rejects_empty_transcript(self):
        class Silent:
            def parties(self):
                return []

        with pytest.raises(ProtocolError):
            detect_roles(Silent())


class TestTraceDistributions:
    def trace(self, events):
        trace = ObservableTrace("network", "das", "Network")
        for position, (link, kind, size) in enumerate(events):
            trace.messages.append(
                ObservedMessage(position, link, kind, "wire", size)
            )
        return trace

    def test_kind_counts_and_size_histogram(self):
        trace = self.trace([
            ("a->b", "q", 64), ("a->b", "q", 128), ("b->a", "r", 64),
        ])
        assert trace.kind_counts() == {"a->b|q": 2, "b->a|r": 1}
        assert trace.size_histogram() == {
            "a->b|q|64": 1, "a->b|q|128": 1, "b->a|r|64": 1,
        }
        assert trace.event_sequence() == [
            "a->b|q|64", "a->b|q|128", "b->a|r|64",
        ]

    def test_bucket_frequency_shape_is_label_free(self):
        trace = self.trace([])
        trace.bucket_frequencies = {"salted-x": 2, "salted-y": 5}
        assert trace.bucket_frequency_shape() == [5, 2]

    def test_summary_is_json_shaped(self):
        trace = self.trace([("a->b", "q", 64)])
        summary = trace.summary()
        assert summary["messages"] == 1
        assert summary["kinds"] == {"a->b|q": 1}
        assert summary["bucket_frequency_shape"] == []


class TestNetworkTraceFromRecords:
    Record = namedtuple(
        "Record", "sequence sender receiver kind wire_bytes"
    )

    def test_orders_by_sequence_and_buckets_wire_bytes(self):
        records = [
            self.Record(2, "mediator", "client", "result", 5000),
            self.Record(1, "client", "mediator", "global_query", 100),
        ]
        trace = network_trace_from_records(records, "commutative")
        assert trace.adversary == "network"
        assert trace.transport == "TcpTransport"
        assert [m.kind for m in trace.messages] == ["global_query", "result"]
        assert [m.size_bucket for m in trace.messages] == [128, 8192]


class TestHistogramQuantileBoundaries:
    """Boundary percentiles of the telemetry histogram estimator."""

    def histogram(self):
        from repro.telemetry.metrics import Histogram

        return Histogram(buckets=(0.1, 1.0, 10.0))

    def test_empty_histogram_has_no_quantiles(self):
        assert self.histogram().quantile(0.5) == 0.0

    def test_zero_and_one_fractions(self):
        histogram = self.histogram()
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.quantile(0.0) == 0.0
        assert histogram.quantile(1.0) == 10.0

    def test_interpolates_within_bucket(self):
        histogram = self.histogram()
        histogram.observe(0.5)
        histogram.observe(0.6)
        # Median of two observations in (0.1, 1.0]: halfway in.
        assert histogram.quantile(0.5) == pytest.approx(0.55, abs=0.5)
        assert 0.1 < histogram.quantile(0.5) <= 1.0

    def test_inf_bucket_clamps_to_last_finite_bound(self):
        histogram = self.histogram()
        histogram.observe(1e9)
        assert histogram.quantile(0.99) == 10.0

    def test_out_of_range_fraction_rejected(self):
        with pytest.raises(TelemetryError):
            self.histogram().quantile(1.5)
        with pytest.raises(TelemetryError):
            self.histogram().quantile(-0.1)
