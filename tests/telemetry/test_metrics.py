"""Tests for the metrics registry and its serialization."""

import pytest

from repro.crypto import instrumentation
from repro.errors import TelemetryError
from repro.telemetry.metrics import (
    PRIMITIVE_OPS_METRIC,
    Histogram,
    MetricsRegistry,
    get_registry,
    use_metrics,
)


class TestInstruments:
    def test_counter_monotonicity(self):
        registry = MetricsRegistry()
        counter = registry.counter("x_total")
        counter.inc()
        counter.inc(4)
        assert registry.value("x_total") == 5
        with pytest.raises(TelemetryError):
            counter.inc(-1)

    def test_counter_requires_total_suffix(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError):
            registry.counter("bad_name")

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(3)
        gauge.dec(1)
        assert registry.value("g") == 2

    def test_histogram_buckets(self):
        histogram = Histogram((0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(55.55)
        assert histogram.cumulative() == [(0.1, 1), (1.0, 2), (10.0, 3)]

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(TelemetryError):
            Histogram((1.0, 0.5))

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.gauge("thing")
        with pytest.raises(TelemetryError):
            registry.histogram("thing")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError):
            registry.gauge("has space")
        with pytest.raises(TelemetryError):
            registry.gauge("ok", {"bad-label": 1})

    def test_labels_key_children_independently(self):
        registry = MetricsRegistry()
        registry.counter("m_total", {"a": "1"}).inc()
        registry.counter("m_total", {"a": "2"}).inc(2)
        assert registry.value("m_total", {"a": "1"}) == 1
        assert registry.value("m_total", {"a": "2"}) == 2
        assert registry.total("m_total") == 3


class TestPrimitiveShim:
    def test_record_forwards_into_registry_and_counter(self):
        registry = MetricsRegistry()
        with use_metrics(registry):
            with instrumentation.count_primitives() as counter:
                instrumentation.record("hash.ideal", 3)
                instrumentation.record("commutative.encrypt")
        assert dict(counter.counts) == registry.primitive_counts()
        assert registry.value(
            PRIMITIVE_OPS_METRIC, {"operation": "hash.ideal"}
        ) == 3

    def test_no_registry_is_a_noop(self):
        assert get_registry() is None
        instrumentation.record("hash.ideal")  # must not raise


class TestSnapshotMerge:
    def test_counters_add_and_gauges_overwrite(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c_total").inc(2)
        a.gauge("g").set(1)
        b.counter("c_total").inc(3)
        b.gauge("g").set(9)
        a.merge(b.snapshot())
        assert a.value("c_total") == 5
        assert a.value("g") == 9

    def test_histograms_add_bucketwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for registry, value in ((a, 0.05), (b, 0.5)):
            registry.histogram("h", buckets=(0.1, 1.0)).observe(value)
        a.merge(b.snapshot())
        merged = a.histogram("h", buckets=(0.1, 1.0))
        assert merged.count == 2
        assert merged.cumulative() == [(0.1, 1), (1.0, 2)]

    def test_mismatched_bucket_layouts_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(0.1, 1.0)).observe(0.05)
        b.histogram("h", buckets=(0.2, 2.0)).observe(0.05)
        with pytest.raises(TelemetryError):
            a.merge(b.snapshot())

    def test_snapshot_is_json_able(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c_total", {"k": "v"}).inc()
        registry.histogram("h").observe(0.2)
        restored = json.loads(json.dumps(registry.snapshot()))
        other = MetricsRegistry()
        other.merge(restored)
        assert other.value("c_total", {"k": "v"}) == 1
