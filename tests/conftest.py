"""Shared fixtures.

Key generation dominates test runtime, so expensive key material (CA,
client RSA keys, Paillier keys) is created once per session and shared.
Sharing is safe: all key containers are immutable and parties carry no
network state between federations.
"""

from __future__ import annotations

import pytest

from repro import CertificationAuthority, Federation, setup_client
from repro.crypto import groups, paillier, rsa
from repro.crypto.homomorphic import PaillierScheme
from repro.mediation.access_control import allow_all
from repro.mediation.client import Client
from repro.relational.datagen import (
    WorkloadSpec,
    Workload,
    generate,
    medical_workload,
    small_workload,
)

#: Fast-but-functional key sizes for tests.
RSA_BITS = 1024
PAILLIER_BITS = 768
GROUP_BITS = 128


@pytest.fixture(scope="session")
def ca() -> CertificationAuthority:
    return CertificationAuthority(key_bits=RSA_BITS)


@pytest.fixture(scope="session")
def rsa_key() -> rsa.RSAPrivateKey:
    return rsa.generate_keypair(RSA_BITS)


@pytest.fixture(scope="session")
def paillier_key() -> paillier.PaillierPrivateKey:
    return paillier.generate_keypair(PAILLIER_BITS)


@pytest.fixture(scope="session")
def paillier_scheme() -> PaillierScheme:
    return PaillierScheme(PAILLIER_BITS)


@pytest.fixture(scope="session")
def comm_group():
    return groups.commutative_group(GROUP_BITS)


@pytest.fixture(scope="session")
def client(ca, paillier_scheme) -> Client:
    """A fully equipped client (hybrid + homomorphic key material)."""
    return setup_client(
        ca,
        identity="test-client",
        properties={("role", "analyst"), ("clearance", "high")},
        rsa_bits=RSA_BITS,
        homomorphic_scheme=paillier_scheme,
    )


@pytest.fixture(scope="session")
def workload() -> Workload:
    return small_workload()


@pytest.fixture(scope="session")
def string_workload() -> Workload:
    return medical_workload()


@pytest.fixture(scope="session")
def skewed_workload() -> Workload:
    return generate(
        WorkloadSpec(
            domain_1=8,
            domain_2=8,
            overlap=5,
            rows_per_value_1=3,
            rows_per_value_2=2,
            skew=1.0,
            payload_attributes=1,
            seed=99,
        )
    )


@pytest.fixture
def make_federation(ca, client):
    """Factory building a fresh two-source federation around a workload."""

    def factory(
        workload: Workload,
        policy_1=None,
        policy_2=None,
        attach_client: bool = True,
    ) -> Federation:
        federation = Federation(ca=ca)
        federation.add_source(
            "S1", [(workload.relation_1, policy_1 or allow_all())]
        )
        federation.add_source(
            "S2", [(workload.relation_2, policy_2 or allow_all())]
        )
        if attach_client:
            federation.attach_client(client)
        return federation

    return factory


@pytest.fixture
def federation(make_federation, workload) -> Federation:
    return make_federation(workload)
