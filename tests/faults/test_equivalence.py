"""Property: survivable fault plans never change what a protocol computes.

Seeded-random fault plans whose transient faults stay below the retry
budget (every rule fires at most once, and a
:class:`~repro.faults.transport.FaultyTransport` retries each send up
to four times) must leave all three protocols returning exactly the
fault-free reference join — on the in-process bus *and* over real TCP
sockets.  The plans are generated from the seed alone, so a failing
seed is a complete reproduction recipe.
"""

import random

import pytest

from repro import Federation, reference_join, run_join_query
from repro.faults import FaultInjector, FaultPlan, FaultRule, FaultyTransport
from repro.mediation.access_control import allow_all
from repro.mediation.network import Network
from repro.transport import TcpTransport

from tests.faults.conftest import FAST

QUERY = "select * from R1 natural join R2"
PROTOCOLS = ["das", "commutative", "private-matching"]
PARTIES = ["mediator", "S1", "S2", "test-client"]

#: FaultyTransport retries each send this many times in total; a plan
#: whose transient rules can hit one message at most ``attempts - 1``
#: times is survivable by construction.
ATTEMPTS = 4


def survivable_plan(seed: int) -> FaultPlan:
    """A random plan guaranteed to stay below the retry budget.

    Each rule is transient (drop/corrupt/delay) and fires at most once
    (``max_triggers=1``).  With at most ``ATTEMPTS - 1`` rules, even
    the worst case — every rule firing on consecutive attempts of the
    same message — leaves one attempt to succeed.
    """
    rng = random.Random(seed)
    rules = []
    for _ in range(rng.randint(1, ATTEMPTS - 1)):
        action = rng.choice(["drop", "corrupt", "delay"])
        kwargs = {
            "action": action,
            "occurrence": rng.randint(1, 10),
            "max_triggers": 1,
        }
        if action == "delay":
            kwargs["delay_seconds"] = rng.choice([0.005, 0.01])
        if rng.random() < 0.5:
            kwargs["party"] = rng.choice(PARTIES)
        rules.append(FaultRule(**kwargs))
    return FaultPlan(seed=seed, rules=tuple(rules))


def build_federation(ca, client, workload, network) -> Federation:
    federation = Federation(ca=ca, network=network)
    federation.add_source("S1", [(workload.relation_1, allow_all())])
    federation.add_source("S2", [(workload.relation_2, allow_all())])
    federation.attach_client(client)
    return federation


def run_under_plan(ca, client, workload, protocol, seed, carrier):
    """One chaos run; returns (result, injector) after closing the carrier."""
    injector = FaultInjector(survivable_plan(seed))
    network = FaultyTransport(carrier, injector)
    try:
        federation = build_federation(ca, client, workload, network)
        result = run_join_query(
            federation, QUERY, protocol=protocol, on_failure="return"
        )
        expected = reference_join(federation, QUERY)
    finally:
        network.close()
    return result, expected, injector


class TestSurvivablePlansOnTheBus:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("seed", [101, 202, 303])
    def test_result_equals_fault_free_reference(
        self, ca, client, workload, protocol, seed
    ):
        result, expected, injector = run_under_plan(
            ca, client, workload, protocol, seed, Network()
        )
        assert result.ok, (
            f"survivable plan (seed={seed}) killed the run: "
            f"{result.error_message}\n{injector.event_log_text()}"
        )
        assert result.global_result == expected

    def test_generated_plans_actually_inject_faults(
        self, ca, client, workload
    ):
        """The property is vacuous if no generated rule ever fires."""
        fired = 0
        for seed in (101, 202, 303):
            _, _, injector = run_under_plan(
                ca, client, workload, "commutative", seed, Network()
            )
            fired += len(injector.event_log())
        assert fired > 0


class TestSurvivablePlansOverTcp:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("seed", [404, 505])
    def test_result_equals_fault_free_reference(
        self, ca, client, workload, protocol, seed
    ):
        result, expected, injector = run_under_plan(
            ca, client, workload, protocol, seed, TcpTransport(retry=FAST)
        )
        assert result.ok, (
            f"survivable plan (seed={seed}) killed the TCP run: "
            f"{result.error_message}\n{injector.event_log_text()}"
        )
        assert result.global_result == expected
