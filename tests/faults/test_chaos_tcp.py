"""Chaos over real sockets: proxy faults, kill-S2 acceptance, shutdown.

The heart of the chaos suite: every fault the proxy can inject at the
frame level must be survived by the hardened TCP path (request-id
dedupe, stale-ACK tolerance, bounded retry), and the documented
"kill datasource 2 mid-delivery" plan must degrade every protocol to a
structured RunFailure — with the injected fault visible in the trace —
instead of a traceback.
"""

import json
import pathlib
import threading

import pytest

from repro import Federation, RunFailure, reference_join, run_join_query
from repro.errors import FaultInjectedError, NetworkError
from repro.faults import (
    ChaosProxy,
    FaultInjector,
    FaultPlan,
    FaultRule,
    FaultyTransport,
)
from repro.mediation.access_control import allow_all
from repro.telemetry import Tracer, use_tracer, write_chrome_trace
from repro.transport import TcpTransport

from tests.faults.conftest import FAST

QUERY = "select * from R1 natural join R2"
KILL_S2_PLAN = pathlib.Path(__file__).resolve().parents[2] / (
    "examples/faultplans/kill-s2-mid-delivery.json"
)

PROTOCOLS = ["das", "commutative", "private-matching"]


def transport_threads() -> list[str]:
    return [
        thread.name
        for thread in threading.enumerate()
        if thread.name.startswith("repro-tcp-transport")
    ]


def build_federation(ca, client, workload, network) -> Federation:
    federation = Federation(ca=ca, network=network)
    federation.add_source("S1", [(workload.relation_1, allow_all())])
    federation.add_source("S2", [(workload.relation_2, allow_all())])
    federation.attach_client(client)
    return federation


class TestProxyFaults:
    """Each frame-level fault, survived by one direct send."""

    @pytest.mark.parametrize(
        "action", ["duplicate", "corrupt", "reset", "drop", "truncate",
                   "delay"]
    )
    def test_fault_survived_and_recorded_once(
        self, threaded_endpoint, action
    ):
        endpoint = threaded_endpoint("S1")
        rule = (
            FaultRule(action=action, occurrence=1, delay_seconds=0.02)
            if action == "delay"
            else FaultRule(action=action, occurrence=1)
        )
        injector = FaultInjector(FaultPlan(seed=5, rules=(rule,)))
        with ChaosProxy(endpoint.address, injector) as proxy:
            transport = TcpTransport(
                endpoints={"S1": (proxy.host, proxy.port)}, retry=FAST
            )
            try:
                transport.register("client")
                transport.register("S1")
                transport.send("client", "S1", "payload", {"n": 42})
                transport.send("client", "S1", "payload", {"n": 43})
            finally:
                transport.close()
        kinds = [(r.kind, r.sequence) for r in endpoint.server.records]
        assert kinds == [("payload", 1), ("payload", 2)]
        assert [e.action for e in injector.event_log()] == [action]

    def test_duplicates_do_not_desync_later_sends(self, threaded_endpoint):
        """Dedupe ACKs linger in the stream; the sender must skip the
        stale ones instead of mismatching them against later sends."""
        endpoint = threaded_endpoint("S1")
        injector = FaultInjector(FaultPlan(rules=(
            FaultRule(action="duplicate", max_triggers=3),
        )))
        with ChaosProxy(endpoint.address, injector) as proxy:
            transport = TcpTransport(
                endpoints={"S1": (proxy.host, proxy.port)}, retry=FAST
            )
            try:
                transport.register("client")
                transport.register("S1")
                for n in range(6):
                    transport.send("client", "S1", "seq", {"n": n})
            finally:
                transport.close()
        assert [r.sequence for r in endpoint.server.records] == list(
            range(1, 7)
        )
        duplicates = endpoint.server.registry.snapshot().get(
            "repro_endpoint_duplicates_total"
        )
        assert duplicates is not None  # the endpoint really absorbed them

    def test_proxy_crash_turns_the_port_dark(self, threaded_endpoint):
        endpoint = threaded_endpoint("S1")
        injector = FaultInjector(FaultPlan(rules=(
            FaultRule(action="crash", party="S1", occurrence=2),
        )))
        proxy = ChaosProxy(endpoint.address, injector)
        proxy.start()
        transport = TcpTransport(
            endpoints={"S1": (proxy.host, proxy.port)}, retry=FAST
        )
        try:
            transport.register("client")
            transport.register("S1")
            transport.send("client", "S1", "first", 1)
            with pytest.raises(NetworkError, match="after 3 attempts"):
                transport.send("client", "S1", "second", 2)
        finally:
            transport.close()
            proxy.stop()
        assert len(endpoint.server.records) == 1

    def test_full_protocol_through_flaky_proxy(
        self, ca, client, workload, threaded_endpoint
    ):
        """A whole protocol run with the mediator behind a chaos proxy
        must converge to the fault-free result."""
        endpoint = threaded_endpoint("mediator")
        # A commutative run sends five mediator-bound frames; the
        # corrupt at #3 forces a retry, whose fresh observation (#4)
        # trips the reset — so all three faults fire in one run.
        injector = FaultInjector(FaultPlan(seed=11, rules=(
            FaultRule(action="duplicate", occurrence=2),
            FaultRule(action="corrupt", occurrence=3),
            FaultRule(action="reset", occurrence=4),
        )))
        with ChaosProxy(endpoint.address, injector) as proxy:
            transport = TcpTransport(
                endpoints={"mediator": (proxy.host, proxy.port)}, retry=FAST
            )
            try:
                federation = build_federation(ca, client, workload, transport)
                result = run_join_query(
                    federation, QUERY, protocol="commutative"
                )
                expected = reference_join(federation, QUERY)
            finally:
                transport.close()
        assert result.global_result == expected
        assert len(injector.event_log()) == 3  # all three faults fired


class TestKillS2Acceptance:
    """The documented chaos scenario, on every protocol, over TCP."""

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_structured_failure_with_fault_in_trace(
        self, ca, client, workload, tmp_path, protocol
    ):
        plan = FaultPlan.load(str(KILL_S2_PLAN))
        injector = FaultInjector(plan)
        network = FaultyTransport(
            TcpTransport(retry=FAST), injector
        )
        tracer = Tracer()
        try:
            federation = build_federation(ca, client, workload, network)
            with use_tracer(tracer):
                run = run_join_query(
                    federation, QUERY, protocol=protocol, on_failure="return"
                )
        finally:
            network.close()
        assert isinstance(run, RunFailure)  # structured, not a traceback
        assert run.ok is False
        assert run.phase == "delivery"
        assert run.error_type == "FaultInjectedError"
        assert "S2" in run.error_message
        assert any("crash" in event for event in run.fault_events)
        # The injected fault is visible in the exported trace.
        trace_path = tmp_path / f"{protocol}.trace.json"
        write_chrome_trace(str(trace_path), tracer.spans)
        exported = json.loads(trace_path.read_text())
        names = {event.get("name") for event in exported["traceEvents"]}
        assert "fault:crash" in names
        # And the dead endpoint leaked no transport threads.
        assert transport_threads() == []

    def test_crash_kills_the_hosted_endpoint_socket(
        self, ca, client, workload
    ):
        """After the injected crash the victim's port is really dark:
        a direct control request against it exhausts its retries."""
        injector = FaultInjector(FaultPlan.load(str(KILL_S2_PLAN)))
        inner = TcpTransport(retry=FAST)
        network = FaultyTransport(inner, injector)
        try:
            federation = build_federation(ca, client, workload, network)
            run = run_join_query(
                federation, QUERY, protocol="commutative", on_failure="return"
            )
            assert isinstance(run, RunFailure)
            with pytest.raises(NetworkError):
                inner.remote_view("S2")
        finally:
            network.close()


class TestShutdownHygiene:
    def test_close_after_crash_leaks_no_threads(self, ca, workload):
        injector = FaultInjector(FaultPlan(rules=(
            FaultRule(action="crash", party="S1", occurrence=1),
        )))
        network = FaultyTransport(TcpTransport(retry=FAST), injector)
        federation = Federation(ca=ca, network=network)
        federation.add_source("S1", [(workload.relation_1, allow_all())])
        with pytest.raises(FaultInjectedError):
            network.send("mediator", "S1", "poke", 1)
        network.close()
        network.close()  # idempotent
        assert transport_threads() == []

    def test_closed_transport_refuses_new_work(self):
        network = FaultyTransport(
            TcpTransport(retry=FAST), FaultInjector(FaultPlan())
        )
        network.register("a")
        network.register("b")
        network.close()
        with pytest.raises(NetworkError, match="closed"):
            network.send("a", "b", "late", 1)
