"""Storage fault injection: queries degrade to recomputing indexes.

The ``storage`` injection site subjects backend operations to fault
plans.  The contract under test: cache-layer faults (store down, slow
I/O, corrupted blobs) never fail a query — the soft-failure
:class:`~repro.storage.base.IndexCache` converts them into counted
misses and the protocols recompute the encrypted indexes.
"""

import pytest

from repro import Federation, run_join_query
from repro.core.runner import reference_join
from repro.errors import StorageError
from repro.faults import FaultInjector, FaultPlan, FaultRule
from repro.mediation.access_control import allow_all
from repro.relational.encoding import encode_relation
from repro.storage import FaultyStorage, MemoryBackend

QUERY = "select * from R1 natural join R2"


def build(ca, client, workload, storage):
    federation = Federation(ca=ca, storage=storage)
    federation.add_source("S1", [(workload.relation_1, allow_all())])
    federation.add_source("S2", [(workload.relation_2, allow_all())])
    federation.attach_client(client)
    return federation


def faulty(*rules, seed=2007):
    return FaultyStorage(
        MemoryBackend(), FaultInjector(FaultPlan(seed=seed, rules=tuple(rules)))
    )


def assert_correct(federation, protocol="commutative"):
    result = run_join_query(federation, QUERY, protocol=protocol)
    reference = reference_join(federation, QUERY)
    assert encode_relation(result.global_result) == encode_relation(reference)
    return result


class TestPlanValidation:
    def test_storage_site_actions(self):
        from repro.faults.plan import SITE_ACTIONS

        assert SITE_ACTIONS["storage"] == frozenset(
            {"delay", "drop", "corrupt"}
        )


@pytest.mark.parametrize("protocol", ["das", "commutative", "private-matching"])
class TestGracefulDegradation:
    def test_dropped_cache_reads_degrade_to_recompute(
        self, ca, client, workload, protocol
    ):
        storage = faulty(
            FaultRule(
                action="drop", kind="storage:cache_get", max_triggers=0,
            ),
            FaultRule(
                action="drop", kind="storage:cache_put", max_triggers=0,
            ),
        )
        federation = build(ca, client, workload, storage)
        result = assert_correct(federation, protocol)
        stats = result.artifacts["storage_cache"]
        assert stats["errors"] > 0
        assert stats["hits"] == 0

    def test_corrupted_cache_blobs_are_rejected_not_trusted(
        self, ca, client, workload, protocol
    ):
        storage = faulty(
            FaultRule(
                action="corrupt", kind="storage:cache_get", max_triggers=0,
            )
        )
        federation = build(ca, client, workload, storage)
        # Warm the cache, then read it back through the corruptor:
        # every deserializer must reject the bit-flipped blobs and the
        # protocols recompute instead of using garbage.
        assert_correct(federation, protocol)
        warm = assert_correct(federation, protocol)
        assert warm.artifacts["storage_cache"]["hits"] == 0
        assert warm.artifacts["storage_cache"]["errors"] > 0


class TestDelay:
    def test_slow_storage_is_only_slow(self, ca, client, workload):
        storage = faulty(
            FaultRule(
                action="delay", delay_seconds=0.01,
                kind="storage:cache_get", occurrence=1,
            )
        )
        federation = build(ca, client, workload, storage)
        result = assert_correct(federation)
        assert result.artifacts["storage_cache"]["errors"] == 0

    def test_fault_events_are_recorded(self, ca, client, workload):
        injector = FaultInjector(
            FaultPlan(
                seed=1,
                rules=(
                    FaultRule(
                        action="drop", kind="storage:cache_put",
                        max_triggers=0,
                    ),
                ),
            )
        )
        storage = FaultyStorage(MemoryBackend(), injector)
        federation = build(ca, client, workload, storage)
        assert_correct(federation)
        assert injector.events
        assert all(event.site == "storage" for event in injector.events)


class TestHardFailures:
    def test_row_loads_are_not_soft(self):
        """Row-plane operations stay hard errors — only the cache is
        allowed to degrade."""
        storage = faulty(FaultRule(action="drop", kind="storage:select"))
        from repro.relational.relation import Relation
        from repro.relational.schema import Attribute, AttributeType, Schema

        schema = Schema("R", (Attribute("k", AttributeType.INT),))
        storage.store_relation("S1", Relation(schema, [(1,)]))
        with pytest.raises(StorageError):
            storage.select("S1", "R", None)

    def test_faulty_wrapper_describes_itself(self):
        storage = faulty()
        assert storage.describe().startswith("faulty(")
