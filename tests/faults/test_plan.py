"""FaultPlan/FaultRule semantics and the deterministic trigger engine."""

import pytest

from repro.errors import ProtocolError
from repro.faults import FaultEvent, FaultInjector, FaultPlan, FaultRule


class TestRuleValidation:
    def test_unknown_action_rejected(self):
        with pytest.raises(ProtocolError, match="unknown fault action"):
            FaultRule(action="explode")

    def test_occurrence_must_be_positive(self):
        with pytest.raises(ProtocolError, match="occurrence"):
            FaultRule(action="drop", occurrence=0)

    @pytest.mark.parametrize("probability", [-0.1, 1.5])
    def test_probability_range_enforced(self, probability):
        with pytest.raises(ProtocolError, match="probability"):
            FaultRule(action="drop", probability=probability)

    def test_delay_needs_a_duration(self):
        with pytest.raises(ProtocolError, match="delay_seconds"):
            FaultRule(action="delay")

    def test_crash_needs_a_victim(self):
        with pytest.raises(ProtocolError, match="victim"):
            FaultRule(action="crash")

    def test_crash_victim_precedence(self):
        rule = FaultRule(action="crash", party="S2", receiver="mediator")
        assert rule.crash_target == "S2"
        assert FaultRule(action="crash", receiver="S1").crash_target == "S1"

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ProtocolError, match="unknown fault rule keys"):
            FaultRule.from_dict({"action": "drop", "when": "now"})

    def test_from_dict_requires_action(self):
        with pytest.raises(ProtocolError, match="missing its 'action'"):
            FaultRule.from_dict({"kind": "ping"})


class TestMatching:
    def test_none_matches_anything(self):
        assert FaultRule(action="drop").matches("a", "b", "k")

    def test_sender_receiver_kind(self):
        rule = FaultRule(action="drop", sender="a", receiver="b", kind="k")
        assert rule.matches("a", "b", "k")
        assert not rule.matches("x", "b", "k")
        assert not rule.matches("a", "x", "k")
        assert not rule.matches("a", "b", "x")

    def test_party_matches_either_side(self):
        rule = FaultRule(action="drop", party="S2")
        assert rule.matches("S2", "mediator", "k")
        assert rule.matches("mediator", "S2", "k")
        assert not rule.matches("mediator", "S1", "k")

    def test_session_matcher(self):
        rule = FaultRule(action="drop", session="sess-a")
        assert rule.matches("a", "b", "k", session="sess-a")
        assert not rule.matches("a", "b", "k", session="sess-b")
        # Legacy session-less traffic never matches a sessioned rule.
        assert not rule.matches("a", "b", "k", session=None)
        assert not rule.matches("a", "b", "k")

    def test_session_none_is_session_blind(self):
        rule = FaultRule(action="drop")
        assert rule.matches("a", "b", "k", session="sess-a")
        assert rule.matches("a", "b", "k", session=None)


class TestPlanSerialization:
    def test_json_roundtrip(self):
        plan = FaultPlan(seed=99, rules=(
            FaultRule(action="crash", party="S2", occurrence=2),
            FaultRule(action="delay", delay_seconds=0.5, probability=0.25,
                      max_triggers=0),
            FaultRule(action="drop", session="sess-a"),
        ))
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_invalid_json_rejected(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            FaultPlan.from_json("{nope")

    def test_unknown_plan_keys_rejected(self):
        with pytest.raises(ProtocolError, match="unknown fault plan keys"):
            FaultPlan.from_dict({"seed": 1, "chaos": True})

    def test_seed_must_be_int(self):
        with pytest.raises(ProtocolError, match="seed"):
            FaultPlan.from_dict({"seed": "7"})

    def test_documented_example_plans_load(self):
        import pathlib

        plans = pathlib.Path(__file__).resolve().parents[2] / (
            "examples/faultplans"
        )
        loaded = [FaultPlan.load(str(path)) for path in plans.glob("*.json")]
        assert loaded, "the documented example plans must exist"


class TestInjector:
    def test_occurrence_fires_exactly_once_at_the_nth_match(self):
        injector = FaultInjector(
            FaultPlan(rules=(FaultRule(action="drop", occurrence=3),))
        )
        fired = [
            bool(injector.observe("transport", "a", "b", "k"))
            for _ in range(6)
        ]
        assert fired == [False, False, True, False, False, False]

    def test_max_triggers_caps_firing(self):
        injector = FaultInjector(
            FaultPlan(rules=(FaultRule(action="drop", max_triggers=2),))
        )
        fired = [
            bool(injector.observe("transport", "a", "b", "k"))
            for _ in range(5)
        ]
        assert fired == [True, True, False, False, False]

    def test_unlimited_triggers(self):
        injector = FaultInjector(
            FaultPlan(rules=(FaultRule(action="drop", max_triggers=0),))
        )
        assert all(
            injector.observe("transport", "a", "b", "k") for _ in range(5)
        )

    def test_site_filtering(self):
        """A duplicate rule is a frame-level fault: the transport site
        cannot enact it, so it neither fires nor counts there."""
        injector = FaultInjector(
            FaultPlan(rules=(FaultRule(action="duplicate", occurrence=1),))
        )
        assert injector.observe("transport", "a", "b", "k") == []
        assert injector.events == []
        assert len(injector.observe("proxy", "a", "b", "k")) == 1

    def test_unknown_site_rejected(self):
        injector = FaultInjector(FaultPlan())
        with pytest.raises(ValueError, match="unknown injection site"):
            injector.observe("carrier-pigeon", "a", "b", "k")

    def test_probability_is_seeded_and_reproducible(self):
        plan = FaultPlan(seed=1234, rules=(
            FaultRule(action="drop", probability=0.5, max_triggers=0),
        ))

        def run():
            injector = FaultInjector(plan)
            return [
                bool(injector.observe("transport", "a", "b", "k"))
                for _ in range(32)
            ]

        first, second = run(), run()
        assert first == second
        assert True in first and False in first  # actually probabilistic

    def test_event_log_text_is_byte_identical_across_runs(self):
        plan = FaultPlan(seed=7, rules=(
            FaultRule(action="drop", probability=0.4, max_triggers=0),
            FaultRule(action="crash", party="b", occurrence=9),
        ))

        def run() -> str:
            injector = FaultInjector(plan)
            for index in range(12):
                injector.observe("transport", "a", "b", f"kind-{index % 3}")
            return injector.event_log_text()

        first, second = run(), run()
        assert first == second
        assert first.encode() == second.encode()

    def test_events_carry_no_timestamps(self):
        assert "timestamp" not in {
            field for field in FaultEvent.__dataclass_fields__
        }
        assert not any(
            "time" in field for field in FaultEvent.__dataclass_fields__
        )


class TestSessionAttribution:
    """Session-scoped rules and the deterministic-log session field."""

    def test_observe_filters_on_session(self):
        injector = FaultInjector(FaultPlan(rules=(
            FaultRule(action="drop", session="sess-a", max_triggers=0),
        )))
        assert injector.observe("transport", "a", "b", "k", session="sess-b") == []
        assert injector.observe("transport", "a", "b", "k") == []
        fired = injector.observe("transport", "a", "b", "k", session="sess-a")
        assert [rule.action for rule in fired] == ["drop"]
        assert injector.events[-1].session == "sess-a"
        assert "session=sess-a" in injector.events[-1].summary()

    def test_session_blind_rule_logs_empty_session(self):
        # The event records the RULE's matcher, never the observed id:
        # session ids are random per run, and the fault log must stay
        # byte-identical across same-plan runs.
        injector = FaultInjector(FaultPlan(rules=(FaultRule(action="drop"),)))
        injector.observe("transport", "a", "b", "k", session="sess-random")
        assert injector.events[-1].session == ""
        assert "session=" not in injector.events[-1].summary()
