"""FaultyTransport over the in-process bus: retry, crash, delegation."""

import pathlib
import time

import pytest

from repro import Federation, RunFailure, run_join_query
from repro.errors import FaultInjectedError
from repro.faults import FaultInjector, FaultPlan, FaultRule, FaultyTransport
from repro.mediation.access_control import allow_all
from repro.mediation.network import Network

QUERY = "select * from R1 natural join R2"
KILL_S2_PLAN = pathlib.Path(__file__).resolve().parents[2] / (
    "examples/faultplans/kill-s2-mid-delivery.json"
)


def faulty_bus(plan: FaultPlan) -> FaultyTransport:
    return FaultyTransport(Network(), FaultInjector(plan))


def build_federation(ca, client, workload, network) -> Federation:
    federation = Federation(ca=ca, network=network)
    federation.add_source("S1", [(workload.relation_1, allow_all())])
    federation.add_source("S2", [(workload.relation_2, allow_all())])
    federation.attach_client(client)
    return federation


class TestTransientFaults:
    def test_dropped_message_is_retried_and_delivered_once(self):
        transport = faulty_bus(
            FaultPlan(rules=(FaultRule(action="drop", occurrence=1),))
        )
        transport.register("a")
        transport.register("b")
        message = transport.send("a", "b", "ping", {"x": 1})
        assert message.sequence == 1
        assert len(transport.transcript) == 1  # delivered exactly once
        assert [e.action for e in transport.fault_events] == ["drop"]

    def test_corrupt_is_transient_too(self):
        transport = faulty_bus(
            FaultPlan(rules=(FaultRule(action="corrupt", occurrence=2),))
        )
        transport.register("a")
        transport.register("b")
        transport.send("a", "b", "ping", 1)
        transport.send("a", "b", "ping", 2)
        assert len(transport.transcript) == 2

    def test_unsurvivable_drop_exhausts_bounded_retries(self):
        transport = faulty_bus(
            FaultPlan(rules=(
                FaultRule(action="drop", max_triggers=0),  # every attempt
            ))
        )
        transport.register("a")
        transport.register("b")
        with pytest.raises(FaultInjectedError) as excinfo:
            transport.send("a", "b", "ping", {})
        assert excinfo.value.retryable is True
        # attempts=4 by default: one initial try plus three retries.
        assert len(transport.fault_events) == 4
        assert len(transport.transcript) == 0

    def test_delay_slows_but_delivers(self):
        transport = faulty_bus(
            FaultPlan(rules=(
                FaultRule(action="delay", delay_seconds=0.05, occurrence=1),
            ))
        )
        transport.register("a")
        transport.register("b")
        started = time.perf_counter()
        transport.send("a", "b", "ping", {})
        assert time.perf_counter() - started >= 0.05
        assert len(transport.transcript) == 1


class TestCrash:
    def test_crash_is_permanent(self):
        transport = faulty_bus(
            FaultPlan(rules=(FaultRule(action="crash", party="b",
                                       occurrence=2),))
        )
        transport.register("a")
        transport.register("b")
        transport.send("a", "b", "ping", 1)
        with pytest.raises(FaultInjectedError) as excinfo:
            transport.send("a", "b", "ping", 2)
        assert excinfo.value.retryable is False
        assert transport.crashed_parties == {"b"}
        # The victim stays dead for every later message touching it.
        with pytest.raises(FaultInjectedError, match="has crashed"):
            transport.send("b", "a", "pong", 3)
        assert len(transport.transcript) == 1


class TestDelegation:
    def test_observables_live_in_the_wrapped_transport(self):
        inner = Network()
        transport = FaultyTransport(inner, FaultInjector(FaultPlan()))
        transport.register("a")
        transport.register("b")
        transport.send("a", "b", "ping", {"x": 1})
        # One shared transcript, visible from both layers.
        assert transport.transcript == inner.transcript
        assert transport.view("b").received_kinds() == ["ping"]
        assert inner.view("b").received_kinds() == ["ping"]
        assert transport.messages_of_kind("ping")
        assert transport.parties() == ("a", "b")
        assert transport.total_bytes() == inner.total_bytes()


class TestGracefulDegradation:
    def test_kill_s2_plan_yields_structured_failure_on_the_bus(
        self, ca, client, workload
    ):
        plan = FaultPlan.load(str(KILL_S2_PLAN))
        federation = build_federation(
            ca, client, workload, faulty_bus(plan)
        )
        run = run_join_query(
            federation, QUERY, protocol="commutative", on_failure="return"
        )
        assert isinstance(run, RunFailure)
        assert run.ok is False
        assert run.phase == "delivery"
        assert run.error_type == "FaultInjectedError"
        assert "S2" in run.error_message
        assert any("crash" in event for event in run.fault_events)
        assert run.messages_delivered() > 0  # partial transcript preserved
        assert "FAILED" in run.summary()

    def test_on_failure_raise_is_the_default(self, ca, client, workload):
        plan = FaultPlan.load(str(KILL_S2_PLAN))
        federation = build_federation(ca, client, workload, faulty_bus(plan))
        with pytest.raises(FaultInjectedError):
            run_join_query(federation, QUERY, protocol="commutative")

    def test_invalid_on_failure_rejected(self, ca, client, workload):
        from repro.errors import ProtocolError

        federation = build_federation(ca, client, workload, Network())
        with pytest.raises(ProtocolError, match="on_failure"):
            run_join_query(federation, QUERY, on_failure="shrug")

    def test_expired_deadline_degrades_to_runfailure(
        self, ca, client, workload
    ):
        federation = build_federation(
            ca, client, workload, faulty_bus(FaultPlan())
        )
        run = run_join_query(
            federation, QUERY, protocol="commutative",
            on_failure="return", deadline_seconds=1e-6,
        )
        assert isinstance(run, RunFailure)
        assert run.error_type == "DeadlineExceeded"

    def test_same_seed_same_plan_byte_identical_event_logs(
        self, ca, client, workload
    ):
        plan = FaultPlan(seed=77, rules=(
            FaultRule(action="drop", probability=0.3, max_triggers=2),
            FaultRule(action="corrupt", probability=0.2, max_triggers=1),
        ))

        def chaos_run() -> str:
            injector = FaultInjector(plan)
            federation = build_federation(
                ca, client, workload, FaultyTransport(Network(), injector)
            )
            result = run_join_query(
                federation, QUERY, protocol="das", on_failure="return"
            )
            assert result.ok  # the plan is survivable
            return injector.event_log_text()

        first, second = chaos_run(), chaos_run()
        assert first.encode("utf-8") == second.encode("utf-8")
        assert first  # the plan actually fired something
