"""Shared chaos-test helpers: fast retries and threaded real endpoints."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.transport import PartyServer, RetryPolicy

#: Fast-failing policy so injected faults cost milliseconds, not the
#: production timeouts, while still exercising retries and backoff.
FAST = RetryPolicy(
    attempts=3, base_delay=0.01, max_delay=0.05, connect_timeout=0.5,
    io_timeout=0.5,
)


class ThreadedEndpoint:
    """A real PartyServer on its own event-loop thread — a 'remote'
    party a chaos proxy can sit in front of."""

    def __init__(self, party: str, **kwargs) -> None:
        self.server = PartyServer(party, **kwargs)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, daemon=True
        )
        self._thread.start()
        self.address = asyncio.run_coroutine_threadsafe(
            self.server.start(), self._loop
        ).result()

    def close(self) -> None:
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self._loop
        ).result()
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._loop.close()


@pytest.fixture
def fast_retry() -> RetryPolicy:
    return FAST


@pytest.fixture
def threaded_endpoint():
    """Factory for ThreadedEndpoints, closed on test exit."""
    created: list[ThreadedEndpoint] = []

    def factory(party: str, **kwargs) -> ThreadedEndpoint:
        endpoint = ThreadedEndpoint(party, **kwargs)
        created.append(endpoint)
        return endpoint

    yield factory
    for endpoint in created:
        endpoint.close()
