"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main

FAST_WORKLOAD = ["--domain", "4", "--overlap", "2", "--rows-per-value", "1"]
FAST = [*FAST_WORKLOAD, "--rsa-bits", "1024", "--paillier-bits", "768"]


class TestDemo:
    def test_runs_and_prints_result(self, capsys):
        assert main(["demo", "--protocol", "commutative", *FAST]) == 0
        out = capsys.readouterr().out
        assert "R1_join_R2" in out
        assert "protocol: commutative" in out

    def test_das_protocol(self, capsys):
        assert main(["demo", "--protocol", "das", *FAST]) == 0
        assert "das[client]" in capsys.readouterr().out

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            main(["demo", "--protocol", "nope"])


class TestCompare:
    def test_prints_table(self, capsys):
        assert main(["compare", *FAST]) == 0
        out = capsys.readouterr().out
        assert "das[client]" in out
        assert "commutative" in out
        assert "private-matching" in out


class TestLeakage:
    def test_prints_both_tables(self, capsys):
        assert main(["leakage", *FAST]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out
        assert "hashfunction" in out


class TestAudit:
    def test_emits_valid_json(self, capsys):
        assert main(["audit", "--protocol", "commutative", *FAST]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["protocol"] == "commutative"
        assert record["transcript"]

    def test_differential_emits_leakage_artifact(self, capsys):
        assert main(["audit", "--differential", *FAST]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro-leakage/1"
        assert document["transport"] == "bus"
        assert set(document["protocols"]) == {
            "commutative", "das", "private-matching",
        }
        assert document["gate"]

    def test_differential_out_writes_file_and_summary(self, tmp_path, capsys):
        artifact = str(tmp_path / "leakage.json")
        assert main([
            "audit", "--differential", "--canary", "--out", artifact, *FAST,
        ]) == 0
        out = capsys.readouterr().out
        assert "Differential leakage audit" in out
        document = json.loads((tmp_path / "leakage.json").read_text())
        assert document["canary"] is True


class TestWorkloadAndQuery:
    def test_workload_then_query(self, tmp_path, capsys):
        out1 = str(tmp_path / "r1.csv")
        out2 = str(tmp_path / "r2.csv")
        assert main(["workload", out1, out2, *FAST_WORKLOAD]) == 0
        capsys.readouterr()
        assert main(["query", out1, out2, "--protocol", "commutative",
                     "--rsa-bits", "1024", "--paillier-bits", "768"]) == 0
        out = capsys.readouterr().out
        assert "R1_join_R2" in out

    def test_query_with_sql_and_output(self, tmp_path, capsys):
        out1 = str(tmp_path / "r1.csv")
        out2 = str(tmp_path / "r2.csv")
        main(["workload", out1, out2, *FAST_WORKLOAD])
        capsys.readouterr()
        result_path = str(tmp_path / "join.csv")
        assert main([
            "query", out1, out2,
            "--sql", "select k from R1 natural join R2",
            "--output", result_path,
            "--rsa-bits", "1024", "--paillier-bits", "768",
        ]) == 0
        from repro.relational import csvio

        joined = csvio.load("J", result_path)
        assert joined.schema.names() == ("k",)

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestLoadgen:
    def test_inprocess_load_reports_and_writes_json(self, tmp_path, capsys):
        json_out = str(tmp_path / "load.json")
        assert main([
            "loadgen", "--sessions", "2", "--queries", "1",
            "--protocol", "commutative", *FAST,
            "--json-out", json_out,
        ]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "p95" in out
        with open(json_out, encoding="utf-8") as handle:
            report = json.load(handle)
        assert report["schema"] == "repro-loadgen/1"
        assert report["completed"] == 2
        assert report["failed"] == 0
        assert report["consistent_results"] is True
        assert report["sessions"] == 2
        assert len(report["outcomes"]) == 2

    def test_sequential_baseline_via_concurrency_one(self, capsys):
        assert main([
            "loadgen", "--sessions", "2", "--concurrency", "1",
            "--protocol", "das", *FAST,
        ]) == 0
        assert "concurrency 1," in capsys.readouterr().out
