"""Router edge cases: affinity, stickiness, drain failover, relaying.

Every test here runs real frames over real loopback sockets through a
:class:`~repro.cluster.harness.LocalCluster`; the router is never
exercised through mocks, because the contract under test is precisely
"the routed byte path behaves like the single-mediator byte path".
"""

import socket

import pytest

from repro.cluster import LocalCluster, fetch_router_stats
from repro.cluster.ring import HashRing
from repro.errors import NetworkError
from repro.session import LEGACY_SESSION, session_scope
from repro.transport import RetryPolicy, TcpTransport, codec

#: Fast-failing policy: BUSY fallthrough tests must not sit out the
#: default backoff schedule.
FAST = RetryPolicy(
    attempts=3, base_delay=0.01, max_delay=0.05, connect_timeout=2.0,
    io_timeout=10.0,
)


@pytest.fixture
def cluster():
    with LocalCluster(shards=2) as fleet:
        yield fleet


@pytest.fixture
def transport(cluster):
    carrier = TcpTransport(
        endpoints={"mediator": cluster.router_endpoint}, retry=FAST
    )
    carrier.register("client")
    carrier.register("mediator")
    yield carrier
    carrier.close()


def owner_of(cluster: LocalCluster, session_id: str) -> str:
    return cluster.router.ring.owner(session_id)


def session_landing(
    cluster: LocalCluster, prefix: str, shard: str, *, avoid: bool = False
) -> str:
    """A session id the ring places on (or off) the given shard."""
    ring = HashRing(cluster.shard_labels)
    for index in range(4096):
        candidate = f"{prefix}-{index:04d}"
        placed_there = ring.owner(candidate) == shard
        if placed_there != avoid:
            return candidate
    raise AssertionError(f"no session id found for shard {shard}")


class TestAffinity:
    def test_session_frames_land_on_exactly_one_shard(
        self, cluster, transport
    ):
        with session_scope("affine-check") as session_id:
            for step in range(4):
                transport.send(
                    "client", "mediator", f"step-{step}", {"n": step}
                )
        label = cluster.router.affinity_of(session_id)
        assert label == owner_of(cluster, session_id)
        records = cluster.shard_servers[label].records
        assert [record.kind for record in records] == [
            f"step-{step}" for step in range(4)
        ]
        for other, server in cluster.shard_servers.items():
            if other != label:
                assert server.records == []

    def test_legacy_sessionless_traffic_shares_one_shard(
        self, cluster, transport
    ):
        transport.send("client", "mediator", "old-school", {"n": 1})
        transport.send("client", "mediator", "old-school", {"n": 2})
        label = cluster.router.affinity_of(LEGACY_SESSION)
        assert label == owner_of(cluster, LEGACY_SESSION)
        assert len(cluster.shard_servers[label].records) == 2

    def test_sessions_spread_across_shards(self, cluster, transport):
        """With enough sessions both shards carry load — the balance
        half of the placement contract."""
        wanted = {
            label: session_landing(cluster, "spread", label)
            for label in cluster.shard_labels
        }
        for session_id in wanted.values():
            with session_scope(session_id):
                transport.send("client", "mediator", "probe", {})
        for label, session_id in wanted.items():
            assert cluster.router.affinity_of(session_id) == label
            assert len(cluster.shard_servers[label].records) == 1


class TestStickiness:
    def test_session_sticks_across_client_reconnects(self, cluster):
        """Affinity outlives the client connection: a new transport
        (fresh sockets, fresh pools) reaches the same shard, because
        the session's mediator-side state is on that shard only."""
        with session_scope("sticky-session") as session_id:
            first = TcpTransport(
                endpoints={"mediator": cluster.router_endpoint}, retry=FAST
            )
            try:
                first.register("client")
                first.register("mediator")
                first.send("client", "mediator", "first-half", {"n": 1})
            finally:
                # Close without farewell for this session: simulate an
                # abrupt client reconnect rather than a clean goodbye.
                first._sessions_used.clear()
                first.close()
            label = cluster.router.affinity_of(session_id)
            second = TcpTransport(
                endpoints={"mediator": cluster.router_endpoint}, retry=FAST
            )
            try:
                second.register("client")
                second.register("mediator")
                second.send("client", "mediator", "second-half", {"n": 2})
            finally:
                second._sessions_used.clear()
                second.close()
        assert cluster.router.affinity_of(session_id) == label
        kinds = [
            record.kind for record in cluster.shard_servers[label].records
        ]
        assert kinds == ["first-half", "second-half"]

    def test_close_releases_affinity(self, cluster, transport):
        with session_scope("short-lived") as session_id:
            transport.send("client", "mediator", "only", {})
            assert cluster.router.affinity_of(session_id) is not None
            transport.close_session(session_id, parties=["mediator"])
        assert cluster.router.affinity_of(session_id) is None

    def test_unknown_session_close_is_answered_locally(self, cluster):
        """An idempotent close for a session no shard ever saw gets a
        local OK — no shard connection, no error."""
        host, port = cluster.router_endpoint
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(
                codec.build_frame(
                    codec.SESSION,
                    codec.encode_value(
                        {"op": "close", "session": "never-opened"}
                    ),
                )
            )
            header = _recv_exactly(sock, codec.FRAME_HEADER_BYTES)
            frame_type, length = codec.parse_frame_header(header)
            payload = codec.decode_value(_recv_exactly(sock, length))
        assert frame_type == codec.OK
        assert payload["session"] == "never-opened"
        stats = cluster.stats()
        assert all(shard["frames"] == 0 for shard in stats["shards"])


class TestDrainFailover:
    def test_busy_on_drain_lands_new_session_on_live_shard(
        self, cluster, transport
    ):
        doomed = cluster.shard_labels[0]
        survivor = cluster.shard_labels[1]
        session_id = session_landing(cluster, "drainee", doomed)
        cluster.drain(doomed)
        with session_scope(session_id):
            transport.send("client", "mediator", "rerouted", {})
        # The router consumed the BUSY and re-placed the session on the
        # ring's next preference shard; the client never saw BUSY.
        assert cluster.router.affinity_of(session_id) == survivor
        assert [
            record.kind for record in cluster.shard_servers[survivor].records
        ] == ["rerouted"]
        stats = {
            shard["label"]: shard for shard in cluster.stats()["shards"]
        }
        assert stats[doomed]["busy_redirects"] == 1
        assert stats[doomed]["sessions"] == 0
        assert stats[survivor]["sessions"] == 1

    def test_draining_shard_finishes_in_flight_sessions(
        self, cluster, transport
    ):
        label = cluster.shard_labels[0]
        session_id = session_landing(cluster, "inflight", label)
        with session_scope(session_id):
            transport.send("client", "mediator", "before-drain", {"n": 1})
            cluster.drain(label)
            # The drained shard still serves its established session.
            transport.send("client", "mediator", "after-drain", {"n": 2})
        assert cluster.router.affinity_of(session_id) == label
        kinds = [
            record.kind for record in cluster.shard_servers[label].records
        ]
        assert kinds == ["before-drain", "after-drain"]
        assert cluster.shard_servers[label].active_sessions() == 1
        transport.close_session(session_id, parties=["mediator"])
        assert cluster.shard_servers[label].active_sessions() == 0

    def test_every_shard_draining_surfaces_busy_to_client(
        self, cluster, transport
    ):
        from repro.errors import ServerBusy

        for label in cluster.shard_labels:
            cluster.drain(label)
        with session_scope("nowhere-to-go"):
            with pytest.raises(ServerBusy):
                transport.send("client", "mediator", "doomed", {})

    def test_killed_shard_fails_over_new_sessions(self, cluster, transport):
        doomed = cluster.shard_labels[0]
        survivor = cluster.shard_labels[1]
        session_id = session_landing(cluster, "killed", doomed)
        cluster.kill(doomed)
        with session_scope(session_id):
            transport.send("client", "mediator", "rehomed", {})
        assert cluster.router.affinity_of(session_id) == survivor

    def test_killed_shard_fails_established_sessions_honestly(
        self, cluster, transport
    ):
        """A session whose shard died loses its shared-nothing state;
        the router surfaces an honest NetworkError instead of silently
        replaying onto a shard that never saw the session."""
        doomed = cluster.shard_labels[0]
        session_id = session_landing(cluster, "orphan", doomed)
        with session_scope(session_id):
            transport.send("client", "mediator", "pre-crash", {})
            cluster.kill(doomed)
            with pytest.raises(NetworkError):
                transport.send("client", "mediator", "post-crash", {})


class TestControlPlane:
    def test_stats_document(self, cluster, transport):
        with session_scope("stats-probe"):
            transport.send("client", "mediator", "probe", {})
        host, port = cluster.router_endpoint
        stats = fetch_router_stats(host, port)
        assert stats["schema"] == "repro-router/1"
        assert stats["party"] == "mediator"
        assert stats["sessions_routed"] == 1
        assert [shard["label"] for shard in stats["shards"]] == \
            cluster.shard_labels
        assert sum(shard["frames"] for shard in stats["shards"]) >= 1

    def test_stats_against_plain_endpoint_raises(self, cluster):
        """A plain PartyServer answers STATS with ERROR; the helper
        turns that into a NetworkError naming the mismatch — how
        ``loadgen --remote --cluster`` detects a router-less mediator."""
        label = cluster.shard_labels[0]
        server = cluster.shard_servers[label]
        with pytest.raises(NetworkError, match="is it a shard router"):
            fetch_router_stats(server.host, server.port)

    def test_global_fetch_concatenates_shard_views(self, cluster, transport):
        wanted = {
            label: session_landing(cluster, "fetch", label)
            for label in cluster.shard_labels
        }
        for label, session_id in wanted.items():
            with session_scope(session_id):
                transport.send("client", "mediator", f"from-{label}", {"x": 1})
        view = transport.remote_view("mediator")
        assert {record.kind for record in view} == {
            f"from-{label}" for label in wanted
        }

    def test_session_scoped_fetch_reaches_the_sessions_shard(
        self, cluster, transport
    ):
        with session_scope("scoped-fetch") as session_id:
            transport.send("client", "mediator", "mine", {})
            view = transport.remote_view("mediator", session=session_id)
        assert [record.kind for record in view] == ["mine"]

    def test_telemetry_aggregates_router_and_shards(
        self, cluster, transport
    ):
        from repro.cluster.router import ROUTER_FRAMES_METRIC

        wanted = {
            label: session_landing(cluster, "telemetry", label)
            for label in cluster.shard_labels
        }
        for session_id in wanted.values():
            with session_scope(session_id):
                transport.send("client", "mediator", "traced", {})
        snapshot = transport.remote_telemetry("mediator")
        assert snapshot["party"] == "mediator"
        assert ROUTER_FRAMES_METRIC in snapshot["metrics"]
        assert ROUTER_FRAMES_METRIC in snapshot["exposition"]

    def test_unexpected_frame_type_is_rejected(self, cluster):
        host, port = cluster.router_endpoint
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(
                codec.build_frame(codec.VIEW, codec.encode_value([]))
            )
            header = _recv_exactly(sock, codec.FRAME_HEADER_BYTES)
            frame_type, length = codec.parse_frame_header(header)
            payload = codec.decode_value(_recv_exactly(sock, length))
        assert frame_type == codec.ERROR
        assert "unexpected frame type" in payload["error"]


class TestLoneShard:
    def test_single_shard_cluster_relays_everything(self):
        """shards=1 is the byte-compatibility gate: every frame kind a
        single mediator serves must round-trip through the router."""
        with LocalCluster(shards=1) as fleet:
            carrier = TcpTransport(
                endpoints={"mediator": fleet.router_endpoint}, retry=FAST
            )
            try:
                carrier.register("client")
                carrier.register("mediator")
                with session_scope("lone") as session_id:
                    carrier.send("client", "mediator", "one", {"n": 1})
                    carrier.send("client", "mediator", "two", {"n": 2})
                    view = carrier.remote_view("mediator", session=session_id)
                    assert [record.kind for record in view] == ["one", "two"]
                    snapshot = carrier.remote_telemetry("mediator")
                    assert snapshot["party"] == "mediator"
            finally:
                carrier.close()
            [label] = fleet.shard_labels
            assert len(fleet.shard_servers[label].records) == 2


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    data = b""
    while len(data) < count:
        chunk = sock.recv(count - len(data))
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        data += chunk
    return data
