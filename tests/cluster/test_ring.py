"""The consistent-hash ring underneath session-affine routing.

The router's correctness rests on three ring properties
(docs/cluster.md): placement is deterministic across router instances,
shard removal re-maps only the removed shard's keys, and virtual nodes
keep the segments balanced enough that a small fleet shares load.
"""

import pytest

from repro.cluster.ring import DEFAULT_REPLICAS, HashRing
from repro.errors import ProtocolError

SHARDS = ["mediator-1", "mediator-2", "mediator-3", "mediator-4"]
KEYS = [f"session-{index:04d}" for index in range(512)]


class TestDeterminism:
    def test_same_shards_same_owners_across_instances(self):
        first = HashRing(SHARDS)
        second = HashRing(list(reversed(SHARDS)))  # insertion order is moot
        for key in KEYS:
            assert first.owner(key) == second.owner(key)

    def test_owners_is_a_permutation_in_stable_preference_order(self):
        ring = HashRing(SHARDS)
        again = HashRing(SHARDS)
        for key in KEYS[:64]:
            order = ring.owners(key)
            assert sorted(order) == sorted(SHARDS)
            assert order == again.owners(key)
            assert order[0] == ring.owner(key)

    def test_add_and_remove_are_idempotent(self):
        ring = HashRing(SHARDS)
        ring.add("mediator-2")
        assert ring.shards == sorted(SHARDS)
        ring.remove("ghost")
        ring.remove("mediator-2")
        ring.remove("mediator-2")
        assert ring.shards == sorted(set(SHARDS) - {"mediator-2"})


class TestRemapMinimality:
    def test_removing_a_shard_remaps_only_its_keys(self):
        ring = HashRing(SHARDS)
        before = {key: ring.owner(key) for key in KEYS}
        ring.remove("mediator-3")
        for key, owner in before.items():
            if owner == "mediator-3":
                assert ring.owner(key) != "mediator-3"
            else:
                assert ring.owner(key) == owner, key

    def test_adding_a_shard_only_steals_keys(self):
        ring = HashRing(SHARDS[:3])
        before = {key: ring.owner(key) for key in KEYS}
        ring.add("mediator-4")
        moved = 0
        for key, owner in before.items():
            after = ring.owner(key)
            if after != owner:
                # A key only ever moves *to* the new shard.
                assert after == "mediator-4", key
                moved += 1
        assert 0 < moved < len(KEYS)

    def test_failover_order_skips_exactly_the_removed_shard(self):
        """The router's BUSY failover (try owners()[1]) must agree with
        the ring after the drained shard is removed — that is what makes
        drain equal re-mapping the ring segment."""
        ring = HashRing(SHARDS)
        shrunk = HashRing(SHARDS)
        shrunk.remove("mediator-2")
        for key in KEYS[:128]:
            survivors = [
                shard for shard in ring.owners(key) if shard != "mediator-2"
            ]
            assert survivors == shrunk.owners(key), key


class TestBalance:
    def test_every_shard_owns_a_reasonable_share(self):
        ring = HashRing(SHARDS)
        counts: dict[str, int] = {shard: 0 for shard in SHARDS}
        for key in KEYS:
            counts[ring.owner(key)] += 1
        mean = len(KEYS) / len(SHARDS)
        for shard, count in counts.items():
            assert count > mean / 3, (shard, counts)
            assert count < mean * 3, (shard, counts)

    def test_default_replicas(self):
        assert HashRing(["only"]).replicas == DEFAULT_REPLICAS


class TestEdgeCases:
    def test_empty_ring_refuses_placement(self):
        ring = HashRing()
        assert ring.owners("anything") == []
        with pytest.raises(ProtocolError):
            ring.owner("anything")

    def test_empty_label_is_rejected(self):
        with pytest.raises(ProtocolError):
            HashRing([""])

    def test_replicas_validated(self):
        with pytest.raises(ProtocolError):
            HashRing(["a"], replicas=0)

    def test_single_shard_owns_everything(self):
        ring = HashRing(["mediator-1"])
        for key in KEYS[:32]:
            assert ring.owner(key) == "mediator-1"
            assert ring.owners(key) == ["mediator-1"]

    def test_membership_protocol(self):
        ring = HashRing(SHARDS)
        assert len(ring) == len(SHARDS)
        assert "mediator-1" in ring
        assert "ghost" not in ring
