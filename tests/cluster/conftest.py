"""Cluster-suite fixtures (the audit factory mirrors tests/hardening)."""

from __future__ import annotations

import pytest

from repro import Federation
from repro.mediation.access_control import allow_all


@pytest.fixture
def audit_factory(ca, client):
    """``differential_audit`` federation factory on session keys."""

    def factory(workload, network):
        federation = Federation(ca=ca, network=network)
        federation.add_source("S1", [(workload.relation_1, allow_all())])
        federation.add_source("S2", [(workload.relation_2, allow_all())])
        federation.attach_client(client)
        return federation

    return factory
