"""Cluster acceptance: loadgen through the fleet, byte-identity, leakage.

Three contracts from docs/cluster.md, each tested over real sockets:

* ``run_load`` through a sharded in-process fleet completes every
  session consistently, and the per-shard record counts account for
  exactly the traffic a single mediator would have received;
* a **one-shard** cluster is byte-compatible with the single-mediator
  path — identical result CSVs on all three protocols, identical
  mediator-endpoint views;
* the router is **leakage-neutral**: the differential audit over the
  cluster carrier reports the same observable distances as plain TCP,
  and the hardened mode stays inside its zero-delta envelope when
  routed.
"""

import pytest

from repro import reference_join, run_join_query
from repro.analysis.audit import (
    HARDENED_GATE_RULES,
    AuditConfig,
    differential_audit,
)
from repro.cluster import ClusterTransport
from repro.loadgen import LoadgenConfig, run_load
from repro.relational import csvio
from repro.transport import TcpTransport

from tests.cluster.test_router import FAST
from tests.hardening.conftest import envelope_breaches, spec_with_seed
from tests.integration.test_concurrent_sessions import build_federation

QUERY = "select * from R1 natural join R2"
PROTOCOLS = ("das", "commutative", "private-matching")


class TestLoadgenThroughCluster:
    @pytest.fixture(scope="class")
    def report(self):
        config = LoadgenConfig(
            sessions=4,
            queries_per_session=1,
            cluster=True,
            shards=2,
            domain=4,
            overlap=2,
            rows_per_value=1,
            rsa_bits=1024,
            paillier_bits=768,
        )
        return run_load(config)

    def test_all_sessions_complete_consistently(self, report):
        assert report.failed == []
        assert len(report.completed) == 4
        assert report.consistent

    def test_per_shard_stats_cover_every_session(self, report):
        cluster = report.cluster
        assert cluster is not None and cluster["shards"] == 2
        router = cluster["router"]
        assert router["schema"] == "repro-router/1"
        shards = {shard["label"]: shard for shard in router["shards"]}
        assert set(shards) == {"mediator-1", "mediator-2"}
        assert sum(shard["sessions"] for shard in shards.values()) == 4
        assert all(shard["failures"] == 0 for shard in shards.values())

    def test_shard_records_account_for_all_mediator_traffic(self, report):
        """Message-count invariant: the fleet together received exactly
        the mediator-bound messages of a single-endpoint run."""
        single = run_load(
            LoadgenConfig(
                sessions=4,
                queries_per_session=1,
                cluster=True,
                shards=1,
                domain=4,
                overlap=2,
                rows_per_value=1,
                rsa_bits=1024,
                paillier_bits=768,
            )
        )
        assert single.failed == []
        fleet_records = sum(
            report.cluster["per_shard_records"].values()
        )
        lone_records = sum(
            single.cluster["per_shard_records"].values()
        )
        assert fleet_records == lone_records

    def test_report_render_names_each_shard(self, report):
        rendered = report.render()
        assert "cluster" in rendered
        assert "mediator-1=" in rendered and "mediator-2=" in rendered


class TestLoneShardByteIdentity:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_result_csv_identical_to_single_mediator(
        self, ca, client, workload, make_federation, tmp_path, protocol
    ):
        expected = reference_join(make_federation(workload), QUERY)

        with TcpTransport(retry=FAST) as direct:
            plain = run_join_query(
                build_federation(ca, client, workload, direct),
                QUERY,
                protocol=protocol,
                session_id=f"direct-{protocol}",
            )
            direct_view = direct.remote_view("mediator")
        with ClusterTransport(shards=1, retry=FAST) as routed_carrier:
            routed = run_join_query(
                build_federation(ca, client, workload, routed_carrier),
                QUERY,
                protocol=protocol,
                session_id=f"direct-{protocol}",  # same id, same placement
            )
            routed_view = routed_carrier.remote_view("mediator")

        assert plain.global_result == expected
        assert routed.global_result == expected
        direct_csv = tmp_path / "direct.csv"
        routed_csv = tmp_path / "routed.csv"
        csvio.dump(plain.global_result, str(direct_csv))
        csvio.dump(routed.global_result, str(routed_csv))
        assert direct_csv.read_bytes() == routed_csv.read_bytes()
        # The transcripts agree message for message, and the routed
        # mediator shard recorded exactly the frame sequence a single
        # mediator would have.  (Wire *sizes* vary run to run with
        # ciphertext randomness — size-neutrality of the router is
        # proven by TestRouterLeakageNeutrality under the audit's
        # deterministic harness.)
        assert [
            (message.sender, message.receiver, message.kind)
            for message in plain.network.transcript
        ] == [
            (message.sender, message.receiver, message.kind)
            for message in routed.network.transcript
        ]
        assert [
            (record.sender, record.receiver, record.kind)
            for record in direct_view
        ] == [
            (record.sender, record.receiver, record.kind)
            for record in routed_view
        ]


class TestRouterLeakageNeutrality:
    def test_cluster_audit_matches_tcp_distances(self, audit_factory):
        """The adversaries' observable distances are the same whether
        the mediator is one endpoint or a routed 2-shard fleet — the
        router adds, removes, and reshapes nothing an adversary sees."""
        spec = spec_with_seed(11)
        protocols = ("commutative", "das")
        over_tcp = differential_audit(
            AuditConfig(spec=spec, transport="tcp", protocols=protocols),
            federation_factory=audit_factory,
        )
        over_cluster = differential_audit(
            AuditConfig(spec=spec, transport="cluster", protocols=protocols),
            federation_factory=audit_factory,
        )
        assert over_cluster["transport"] == "cluster"
        assert over_cluster["protocols"] == over_tcp["protocols"]
        assert over_cluster["gate"] == over_tcp["gate"]

    def test_hardened_mode_through_router_stays_zero_delta(
        self, audit_factory
    ):
        """Acceptance: hardened-mode traffic through the router remains
        inside the zero-delta envelope of HARDENED_GATE_RULES."""
        document = differential_audit(
            AuditConfig(
                spec=spec_with_seed(23),
                transport="cluster",
                hardened=True,
                protocols=("commutative", "das"),
            ),
            federation_factory=audit_factory,
        )
        breaches = envelope_breaches(document, HARDENED_GATE_RULES)
        assert breaches == [], breaches
