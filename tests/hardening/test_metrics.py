"""Cross-protocol conformance of the hardening artifact and metrics.

Every hardened run must expose the same observability surface no
matter which protocol produced it: an ``artifacts["hardening"]``
digest with a sane overhead factor, and the three
``repro_hardening_*`` Prometheus counters — scrapeable live through
:class:`~repro.telemetry.scrape.MetricsScrapeServer`, exactly what
``repro serve --metrics-port`` wires up.
"""

import asyncio

import pytest

from repro import Federation, run_join_query
from repro.hardening import (
    DUMMY_ITEMS_METRIC,
    FRAMES_METRIC,
    PAD_BYTES_METRIC,
)
from repro.mediation.access_control import allow_all
from repro.telemetry.exporters import (
    prometheus_exposition,
    validate_exposition,
)
from repro.telemetry.metrics import MetricsRegistry, use_metrics
from repro.telemetry.scrape import MetricsScrapeServer

QUERY = "select * from R1 natural join R2"
PROTOCOLS = ["das", "commutative", "private-matching"]

ARTIFACT_KEYS = {
    "enabled", "policy", "real_bytes_total", "padded_bytes_total",
    "pad_bytes_total", "overhead_factor", "dummy_items_total",
    "frames_total", "dummy_frames_total",
}


def build(ca, client, workload):
    federation = Federation(ca=ca)
    federation.add_source("S1", [(workload.relation_1, allow_all())])
    federation.add_source("S2", [(workload.relation_2, allow_all())])
    federation.attach_client(client)
    return federation


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestHardeningConformance:
    def test_artifact_shape_and_counters(self, ca, client, workload, protocol):
        registry = MetricsRegistry()
        with use_metrics(registry):
            federation = build(ca, client, workload)
            result = run_join_query(
                federation, QUERY, protocol=protocol, hardening=True
            )
        artifact = result.artifacts["hardening"]
        assert set(artifact) == ARTIFACT_KEYS
        assert artifact["overhead_factor"] >= 1.0
        assert artifact["pad_bytes_total"] == (
            artifact["padded_bytes_total"] - artifact["real_bytes_total"]
        )
        assert artifact["pad_bytes_total"] > 0
        # The run folded its accounting into the installed registry.
        assert registry.value(
            PAD_BYTES_METRIC, {"protocol": protocol}
        ) == artifact["pad_bytes_total"]
        assert registry.value(
            DUMMY_ITEMS_METRIC, {"protocol": protocol}
        ) == artifact["dummy_items_total"]
        assert registry.value(
            FRAMES_METRIC, {"protocol": protocol}
        ) == artifact["frames_total"]


class TestPrometheusSurface:
    @pytest.fixture(scope="class")
    def registry(self, ca, client, workload):
        registry = MetricsRegistry()
        with use_metrics(registry):
            federation = build(ca, client, workload)
            run_join_query(
                federation, QUERY, protocol="commutative", hardening=True
            )
        return registry

    def test_exposition_carries_hardening_counters(self, registry):
        text = prometheus_exposition(registry)
        assert validate_exposition(text) == []
        assert PAD_BYTES_METRIC in text
        assert 'protocol="commutative"' in text

    def test_live_scrape_serves_hardening_counters(self, registry):
        """GET /metrics on the scrape endpoint (the --metrics-port
        surface) exposes the padding counters."""

        async def scrape():
            server = MetricsScrapeServer(
                lambda: prometheus_exposition(registry)
            )
            host, port = await server.start()
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"GET /metrics HTTP/1.1\r\n\r\n")
                await writer.drain()
                response = await asyncio.wait_for(reader.read(), timeout=5)
                writer.close()
                return response.decode()
            finally:
                await server.stop()

        body = asyncio.run(scrape())
        assert "200 OK" in body
        assert PAD_BYTES_METRIC in body

    def test_unhardened_runs_leave_counters_untouched(self, ca, client, workload):
        registry = MetricsRegistry()
        with use_metrics(registry):
            federation = build(ca, client, workload)
            run_join_query(federation, QUERY, protocol="commutative")
        assert PAD_BYTES_METRIC not in prometheus_exposition(registry)
