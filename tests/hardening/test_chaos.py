"""Hardening and chaos engineering compose.

Survivable fault plans (transient drop/corrupt/delay faults strictly
below the retry budget — see ``tests/faults/test_equivalence.py``) must
not interact with the padding layer: a hardened run under such a plan
still returns exactly the fault-free reference join, and a hardened
differential audit whose every protocol run is fault-injected still
lands inside the hardened envelope — the retries a plan forces are a
function of the (invariant) message sequence, so adjacent workloads
trigger them identically.
"""

import pytest

from repro import reference_join, run_join_query
from repro.analysis.audit import (
    HARDENED_GATE_RULES,
    AuditConfig,
    differential_audit,
)
from repro.faults import FaultInjector, FaultyTransport
from repro.mediation.network import Network

from tests.faults.test_equivalence import build_federation, survivable_plan
from tests.hardening.conftest import envelope_breaches, spec_with_seed

QUERY = "select * from R1 natural join R2"
PROTOCOLS = ["das", "commutative", "private-matching"]


def run_hardened_under_plan(ca, client, workload, protocol, seed):
    injector = FaultInjector(survivable_plan(seed))
    network = FaultyTransport(Network(), injector)
    try:
        federation = build_federation(ca, client, workload, network)
        result = run_join_query(
            federation, QUERY, protocol=protocol, on_failure="return",
            hardening=True,
        )
        expected = reference_join(federation, QUERY)
    finally:
        network.close()
    return result, expected, injector


class TestHardenedSurvivablePlans:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("seed", [101, 303])
    def test_hardened_result_equals_fault_free_reference(
        self, ca, client, workload, protocol, seed
    ):
        result, expected, injector = run_hardened_under_plan(
            ca, client, workload, protocol, seed
        )
        assert result.ok, (
            f"survivable plan (seed={seed}) killed the hardened run: "
            f"{result.error_message}\n{injector.event_log_text()}"
        )
        assert result.global_result == expected
        assert result.artifacts["hardening"]["enabled"] is True

    def test_plans_actually_inject_faults_into_hardened_runs(
        self, ca, client, workload
    ):
        """Vacuity guard: at least one generated rule must fire."""
        fired = 0
        for seed in (101, 303):
            _, _, injector = run_hardened_under_plan(
                ca, client, workload, "commutative", seed
            )
            fired += len(injector.event_log())
        assert fired > 0


class TestHardenedAuditUnderFaults:
    def test_distances_stay_in_envelope_under_survivable_faults(
        self, ca, client
    ):
        """Every audited run rides a fresh FaultyTransport built from
        the same seeded plan, so base and adjacent runs see identical
        fault schedules — and the hardened distances stay zero."""
        from repro import Federation
        from repro.mediation.access_control import allow_all

        def factory(workload, network):
            faulty = FaultyTransport(
                network, FaultInjector(survivable_plan(202))
            )
            federation = Federation(ca=ca, network=faulty)
            federation.add_source("S1", [(workload.relation_1, allow_all())])
            federation.add_source("S2", [(workload.relation_2, allow_all())])
            federation.attach_client(client)
            return federation

        document = differential_audit(
            AuditConfig(
                spec=spec_with_seed(11),
                hardened=True,
                protocols=("commutative",),
            ),
            federation_factory=factory,
        )
        breaches = envelope_breaches(document, HARDENED_GATE_RULES)
        assert breaches == [], breaches
