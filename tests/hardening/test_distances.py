"""The hardened audit's distances are (near-)zero; unhardened ones are not.

This is the tentpole acceptance test, asserted in *both* directions so
neither side is vacuous:

* hardened differential audits over several seeded adjacent workload
  pairs stay inside the :data:`HARDENED_GATE_RULES` envelope (TV
  distances at most epsilon, every count/bucket/cardinality delta
  exactly zero) for **every** semi-honest adversary of every protocol,
  on the bus and over TCP;
* the same audits run unhardened provably breach that envelope — the
  adjacent workloads this suite uses genuinely move the observables,
  so the zeros above are earned, not trivial.
"""

import pytest

from repro.analysis.audit import (
    HARDENED_EPSILON,
    HARDENED_GATE_RULES,
    AuditConfig,
    differential_audit,
    leakage_json,
)

from tests.hardening.conftest import envelope_breaches, spec_with_seed

#: Seeded adjacent pairs; each seed yields a distinct (base, twin) pair.
SEEDS = [3, 11, 23]


class TestHardenedEnvelope:
    @pytest.fixture(scope="class")
    def audits(self, ca, client):
        """One hardened + one unhardened audit per seed (bus, all
        protocols), computed once for the whole class."""
        from repro import Federation
        from repro.mediation.access_control import allow_all

        def factory(workload, network):
            federation = Federation(ca=ca, network=network)
            federation.add_source("S1", [(workload.relation_1, allow_all())])
            federation.add_source("S2", [(workload.relation_2, allow_all())])
            federation.attach_client(client)
            return federation

        documents = {}
        for seed in SEEDS:
            spec = spec_with_seed(seed)
            documents[seed] = {
                "hardened": differential_audit(
                    AuditConfig(spec=spec, hardened=True),
                    federation_factory=factory,
                ),
                "plain": differential_audit(
                    AuditConfig(spec=spec), federation_factory=factory
                ),
            }
        return documents

    @pytest.mark.parametrize("seed", SEEDS)
    def test_hardened_distances_within_envelope(self, audits, seed):
        breaches = envelope_breaches(
            audits[seed]["hardened"], HARDENED_GATE_RULES
        )
        assert breaches == [], (
            f"seed {seed}: hardened audit leaked past the envelope: "
            f"{breaches}"
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_unhardened_audit_breaches_envelope(self, audits, seed):
        """Non-vacuity: the same adjacent pair, run without hardening,
        must violate the hardened envelope somewhere."""
        breaches = envelope_breaches(audits[seed]["plain"], HARDENED_GATE_RULES)
        assert breaches, (
            f"seed {seed}: the unhardened audit already satisfies the "
            f"hardened envelope — the workload does not move the "
            f"observables and the hardened zeros are vacuous"
        )

    def test_hardened_document_claims_hardened_gate(self, audits):
        document = audits[SEEDS[0]]["hardened"]
        assert document["hardened"] is True
        for key, rule in document["gate"].items():
            metric = key.rsplit("/", 1)[1]
            assert rule == HARDENED_GATE_RULES[metric], key
        # Every TV slack is the hardened epsilon, every delta is exact.
        assert HARDENED_GATE_RULES["messages_tv"]["slack"] == HARDENED_EPSILON
        assert HARDENED_GATE_RULES["max_count_delta"]["slack"] == 0.0

    def test_every_adversary_covered(self, audits):
        document = audits[SEEDS[0]]["hardened"]
        for entry in document["protocols"].values():
            assert set(entry["adversaries"]) == {
                "network", "mediator", "datasource:S1", "datasource:S2",
            }

    def test_hardened_audit_is_deterministic(self, audits, audit_factory):
        again = differential_audit(
            AuditConfig(spec=spec_with_seed(SEEDS[0]), hardened=True),
            federation_factory=audit_factory,
        )
        assert leakage_json(audits[SEEDS[0]]["hardened"]) == leakage_json(again)


class TestHardenedEnvelopeOverTcp:
    def test_tcp_distances_within_envelope(self, audit_factory):
        """Hardening is transport-independent: the envelope holds over
        real sockets too (this is what lets the committed baseline be
        labelled transport "any")."""
        document = differential_audit(
            AuditConfig(
                spec=spec_with_seed(SEEDS[1]),
                transport="tcp",
                hardened=True,
            ),
            federation_factory=audit_factory,
        )
        breaches = envelope_breaches(document, HARDENED_GATE_RULES)
        assert breaches == [], breaches
        assert document["transport"] == "tcp"


class TestHardenedCanary:
    @pytest.fixture(scope="class")
    def canary_document(self, ca, client):
        from repro import Federation
        from repro.mediation.access_control import allow_all

        def factory(workload, network):
            federation = Federation(ca=ca, network=network)
            federation.add_source("S1", [(workload.relation_1, allow_all())])
            federation.add_source("S2", [(workload.relation_2, allow_all())])
            federation.attach_client(client)
            return federation

        return differential_audit(
            AuditConfig(
                spec=spec_with_seed(SEEDS[0]),
                hardened=True,
                canary=True,
                protocols=("commutative",),
            ),
            federation_factory=factory,
        )

    def test_canary_breaches_the_hardened_envelope(self, canary_document):
        """A hardened deployment whose padding layer silently regressed
        (modelled by ``hardened=True, canary=True`` — the runs execute
        unhardened behind the size-leaking canary transport) must land
        outside the envelope, or --expect-fail in CI is meaningless."""
        document = canary_document
        assert document["hardened"] is True and document["canary"] is True
        breaches = envelope_breaches(document, HARDENED_GATE_RULES)
        assert breaches, "the planted canary leak went undetected"

    def test_canary_leak_is_visible_on_the_wire(self, canary_document):
        """The LeakyTransport really injects pad frames the adversary
        can see (guards against the canary degrading silently)."""
        kinds = canary_document["protocols"]["commutative"]["adversaries"][
            "network"
        ]["base"]["kinds"]
        assert any("leak_pad" in kind for kind in kinds)
