"""Hardened runs compute exactly the unhardened join — on every stack.

The whole point of the oblivious mode is that padding, dummy etuples,
and cover frames are *observable-only*: for all three delivery
protocols, over the in-process bus and real TCP sockets, with the
memory and SQLite storage backends, a hardened run's global result is
byte-identical to the plain reference join.  The dummy accounting in
the run artifacts proves the property is not vacuous — dummies were
injected, and none of them reached the client's relation.
"""

import pytest

from repro import Federation, reference_join, run_join_query
from repro.errors import ProtocolError
from repro.mediation.access_control import allow_all
from repro.relational.encoding import encode_relation
from repro.storage import MemoryBackend, SQLiteBackend
from repro.transport import RetryPolicy, TcpTransport

QUERY = "select * from R1 natural join R2"
PROTOCOLS = ["das", "commutative", "private-matching"]

POLICY = RetryPolicy(attempts=3, base_delay=0.05, connect_timeout=5.0,
                     io_timeout=30.0)


def build(ca, client, workload, storage=None, network=None):
    if network is None:
        federation = Federation(ca=ca, storage=storage)
    else:
        federation = Federation(ca=ca, network=network, storage=storage)
    federation.add_source("S1", [(workload.relation_1, allow_all())])
    federation.add_source("S2", [(workload.relation_2, allow_all())])
    federation.attach_client(client)
    return federation


def make_backend(kind, tmp_path):
    if kind == "memory":
        return MemoryBackend()
    return SQLiteBackend(str(tmp_path / "hardened.db"))


@pytest.fixture
def expected(ca, client, workload):
    """Reference join bytes (computed once per test via plain eval)."""
    federation = build(ca, client, workload)
    return encode_relation(reference_join(federation, QUERY))


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("kind", ["memory", "sqlite"])
class TestHardenedBusEquivalence:
    def test_result_matches_reference_and_dummies_discarded(
        self, ca, client, workload, tmp_path, expected, kind, protocol
    ):
        backend = make_backend(kind, tmp_path)
        try:
            federation = build(ca, client, workload, storage=backend)
            result = run_join_query(
                federation, QUERY, protocol=protocol, hardening=True
            )
            assert encode_relation(result.global_result) == expected
            hardening = result.artifacts["hardening"]
            assert hardening["enabled"] is True
            # Padding really happened, and it never leaked into rows.
            assert hardening["padded_bytes_total"] > hardening["real_bytes_total"]
            assert hardening["overhead_factor"] > 1.0
            if protocol != "private-matching":
                # PM pads the side tables but has no framed result
                # channel; DAS and commutative deliver through cover.
                assert hardening["frames_total"] >= 1
        finally:
            backend.close()


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("kind", ["memory", "sqlite"])
class TestHardenedTcpEquivalence:
    def test_tcp_result_matches_reference(
        self, ca, client, workload, tmp_path, expected, kind, protocol
    ):
        backend = make_backend(kind, tmp_path)
        try:
            with TcpTransport(retry=POLICY) as transport:
                federation = build(
                    ca, client, workload, storage=backend, network=transport
                )
                result = run_join_query(
                    federation, QUERY, protocol=protocol, hardening=True
                )
                assert encode_relation(result.global_result) == expected
                assert result.artifacts["hardening"]["enabled"] is True
        finally:
            backend.close()


class TestDummiesNeverReachTheClient:
    @pytest.mark.parametrize("protocol", ["das", "commutative"])
    def test_dummies_injected_and_all_discarded(
        self, ca, client, skewed_workload, protocol
    ):
        """DAS and commutative inject dummy items on a skewed workload
        (uniform multiplicities sit exactly at the bucket bound and need
        none); the client must decrypt-and-discard every one of them."""
        plain = build(ca, client, skewed_workload)
        expected = encode_relation(reference_join(plain, QUERY))
        federation = build(ca, client, skewed_workload)
        result = run_join_query(
            federation, QUERY, protocol=protocol, hardening=True
        )
        assert result.artifacts["hardening"]["dummy_items_total"] > 0
        assert result.artifacts["dummy_pairs_discarded"] >= 0
        assert encode_relation(result.global_result) == expected

    def test_unhardened_run_has_no_hardening_artifact(
        self, ca, client, workload
    ):
        federation = build(ca, client, workload)
        result = run_join_query(federation, QUERY, protocol="commutative")
        assert "hardening" not in result.artifacts
        assert "dummy_pairs_discarded" not in result.artifacts


class TestHardenedRejectsLeakyConfigurations:
    def test_equi_width_partitioning_is_rejected(self, ca, client, workload):
        """equi_width bucket membership depends on value magnitude —
        not an adjacency invariant, so hardened DAS refuses it."""
        from repro.core.das import DASConfig

        federation = build(ca, client, workload)
        with pytest.raises(ProtocolError, match="equi_width|invariant"):
            run_join_query(
                federation,
                QUERY,
                protocol="das",
                config=DASConfig(strategy="equi_width"),
                hardening=True,
            )

    def test_federation_level_policy_is_picked_up(
        self, ca, client, workload, expected
    ):
        """A federation-wide PaddingPolicy hardens runs by default."""
        from repro.hardening import PaddingPolicy

        federation = build(ca, client, workload)
        federation.hardening = PaddingPolicy(batch_size=8, quantum=16)
        result = run_join_query(federation, QUERY, protocol="commutative")
        assert result.artifacts["hardening"]["policy"]["quantum"] == 16
        assert encode_relation(result.global_result) == expected
