"""Shared fixtures for the leakage-hardened-mode suite.

The audits here reuse the session's key material (keygen dominates
runtime) and a deliberately small-but-joinable workload spec: big
enough that the join, the DAS buckets, and the result channel all move
under the adjacent perturbation, small enough that a dozen protocol
runs stay fast.
"""

from __future__ import annotations

import pytest

from repro import Federation
from repro.mediation.access_control import allow_all
from repro.relational.datagen import WorkloadSpec

#: Audit workload: 6 runs per (protocol, hardened-flag) pair audited.
AUDIT_SPEC = WorkloadSpec(
    domain_1=6,
    domain_2=6,
    overlap=3,
    rows_per_value_1=1,
    rows_per_value_2=1,
    seed=11,
)


def spec_with_seed(seed: int) -> WorkloadSpec:
    return WorkloadSpec(
        domain_1=AUDIT_SPEC.domain_1,
        domain_2=AUDIT_SPEC.domain_2,
        overlap=AUDIT_SPEC.overlap,
        rows_per_value_1=AUDIT_SPEC.rows_per_value_1,
        rows_per_value_2=AUDIT_SPEC.rows_per_value_2,
        seed=seed,
    )


@pytest.fixture
def audit_factory(ca, client):
    """``differential_audit`` federation factory on session keys."""

    def factory(workload, network):
        federation = Federation(ca=ca, network=network)
        federation.add_source("S1", [(workload.relation_1, allow_all())])
        federation.add_source("S2", [(workload.relation_2, allow_all())])
        federation.attach_client(client)
        return federation

    return factory


def envelope_breaches(document: dict, rules: dict) -> list[str]:
    """Gated distances of ``document`` violating the hardened ``rules``.

    Mirrors the arithmetic of ``scripts/check_perf_regression.py`` with
    a zero baseline: a metric passes iff ``value <= tolerance * 0 +
    slack`` — i.e. TV distances at most epsilon, deltas exactly zero.
    """
    breaches = []
    for protocol, entry in document["protocols"].items():
        for adversary, audit in entry["adversaries"].items():
            for metric, value in audit["distances"].items():
                rule = rules.get(metric)
                if rule is None:
                    continue
                if value > rule["slack"]:
                    breaches.append(
                        f"{protocol}/{adversary}/{metric}={value}"
                    )
    return breaches
