"""Property tests for the padding-policy algebra (hypothesis).

The hardened mode's safety argument rests on a handful of pure
functions; these properties pin them down over the whole input space:

* wrap/unwrap is lossless for real payloads — padding can never change
  what the client decodes;
* dummies always unwrap to ``None`` — they can never masquerade as
  rows;
* padded lengths are quantum multiples and depend only on the *maximum*
  payload length in a channel, so adjacent workloads with the same
  maxima produce byte-identical ciphertext size profiles;
* the bucket bound is a function of adjacency invariants alone and
  dominates every real occupancy it is meant to cover.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.errors import ParameterError, ProtocolError
from repro.hardening import HEADER_BYTES, Hardening, PaddingPolicy

payloads = st.binary(min_size=0, max_size=512)
quanta = st.integers(min_value=1, max_value=256)


@given(payload=payloads, quantum=quanta)
def test_wrap_unwrap_roundtrip(payload, quantum):
    policy = PaddingPolicy(quantum=quantum)
    target = policy.padded_length(len(payload))
    padded = policy.wrap(payload, target)
    assert len(padded) == target
    assert policy.unwrap(padded) == payload


@given(payload=payloads, quantum=quanta)
def test_padded_length_is_quantum_multiple_and_sufficient(payload, quantum):
    policy = PaddingPolicy(quantum=quantum)
    target = policy.padded_length(len(payload))
    assert target % quantum == 0
    assert target >= HEADER_BYTES + len(payload)
    # Tightness: one quantum less would not fit the wrapped payload.
    assert target - quantum < HEADER_BYTES + len(payload)


@given(target=st.integers(min_value=1, max_value=1024))
def test_dummy_always_unwraps_to_discard(target):
    policy = PaddingPolicy()
    dummy = policy.wrap_dummy(target)
    assert len(dummy) == target
    assert policy.unwrap(dummy) is None


@given(
    lengths=st.lists(st.integers(min_value=0, max_value=300), min_size=1,
                     max_size=20),
    quantum=quanta,
)
def test_uniform_wrapping_equalizes_sizes(lengths, quantum):
    """Within one channel every wrapped plaintext has the same length,
    and that length depends only on the maximum payload length."""
    hardening = Hardening(PaddingPolicy(quantum=quantum))
    items = [bytes(length) for length in lengths]
    wrapped, target = hardening.wrap_uniform(items)
    assert {len(item) for item in wrapped} == {target}
    assert target == hardening.policy.padded_length(max(lengths))
    for original, padded in zip(items, wrapped):
        assert hardening.unwrap(padded) == original


@given(
    max_multiplicity=st.integers(min_value=0, max_value=16),
    domain_size=st.integers(min_value=0, max_value=64),
    buckets=st.integers(min_value=1, max_value=16),
)
def test_bucket_bound_dominates_any_real_occupancy(
    max_multiplicity, domain_size, buckets
):
    """A bucket of k values holds at most k * max_multiplicity rows;
    the equi_depth bound must cover the largest possible k."""
    policy = PaddingPolicy()
    bound = policy.bucket_bound(
        max_multiplicity, domain_size, buckets, "equi_depth"
    )
    if domain_size == 0 or max_multiplicity == 0:
        assert bound == 0
        return
    effective = min(buckets, domain_size)
    worst_values_per_bucket = -(-domain_size // effective)
    assert bound >= worst_values_per_bucket * max_multiplicity
    # Singleton buckets hold exactly one value.
    assert policy.bucket_bound(
        max_multiplicity, domain_size, buckets, "singleton"
    ) == max_multiplicity


@given(payload=payloads)
@settings(max_examples=25)
def test_wrap_rejects_undersized_target(payload):
    policy = PaddingPolicy()
    with pytest.raises(ParameterError):
        policy.wrap(payload, HEADER_BYTES + len(payload) - 1)


class TestUnwrapRejectsMalformedPlaintexts:
    def test_empty(self):
        with pytest.raises(ProtocolError):
            PaddingPolicy().unwrap(b"")

    def test_unknown_marker(self):
        with pytest.raises(ProtocolError):
            PaddingPolicy().unwrap(b"\x07" + b"\x00" * 16)

    def test_truncated_header(self):
        with pytest.raises(ProtocolError):
            PaddingPolicy().unwrap(b"\x01\x00\x00")

    def test_declared_length_exceeds_body(self):
        padded = b"\x01" + (100).to_bytes(4, "big") + b"short"
        with pytest.raises(ProtocolError):
            PaddingPolicy().unwrap(padded)

    def test_equi_width_has_no_invariant_bound(self):
        with pytest.raises(ProtocolError):
            PaddingPolicy().bucket_bound(2, 8, 4, "equi_width")


class TestAccounting:
    def test_stats_track_real_padded_and_dummy_bytes(self):
        hardening = Hardening(PaddingPolicy(quantum=8))
        wrapped, target = hardening.wrap_uniform([b"abc", b"defgh"])
        hardening.dummy(target)
        assert hardening.stats.real_bytes == 8
        assert hardening.stats.padded_bytes == 3 * target
        assert hardening.stats.dummy_items == 1
        artifact = hardening.artifact()
        assert artifact["pad_bytes_total"] == 3 * target - 8
        assert artifact["overhead_factor"] == round(3 * target / 8, 4)

    def test_policy_rejects_nonpositive_parameters(self):
        for kwargs in ({"batch_size": 0}, {"quantum": 0}, {"table_quantum": -1}):
            with pytest.raises(ParameterError):
                PaddingPolicy(**kwargs)
