"""Tests for wire-size estimation."""

from dataclasses import dataclass

from repro.crypto import hybrid, paillier
from repro.mediation.sizing import estimate_size
from repro.relational.partition import build_index_table, singleton
from repro.relational.relation import Relation
from repro.relational.schema import schema


class TestPrimitives:
    def test_none_and_bool(self):
        assert estimate_size(None) == 0
        assert estimate_size(True) == 1

    def test_bytes_exact(self):
        assert estimate_size(b"12345") == 5

    def test_str_utf8(self):
        assert estimate_size("héllo") == len("héllo".encode())

    def test_int_big_endian_length(self):
        assert estimate_size(0) == 1
        assert estimate_size(255) == 1
        assert estimate_size(256) == 2
        assert estimate_size(2**128) == 17


class TestContainers:
    def test_list_sums(self):
        assert estimate_size([b"ab", b"cd"]) == 4

    def test_dict_sums_keys_and_values(self):
        assert estimate_size({b"k": b"vvv"}) == 4

    def test_dataclass_fields(self):
        @dataclass
        class Blob:
            a: bytes
            b: int

        assert estimate_size(Blob(b"xyz", 255)) == 4


class TestCryptoObjects:
    def test_hybrid_ciphertext(self, rsa_key):
        ct = hybrid.encrypt([rsa_key.public_key()], b"x" * 100)
        assert estimate_size(ct) == ct.size_bytes()
        assert estimate_size(ct) > 100

    def test_paillier_ciphertext(self):
        key = paillier.generate_keypair(256)
        ct = paillier.encrypt(key.public_key, 5)
        # Ciphertext lives mod n^2: ~512 bits = 64 bytes.
        assert estimate_size(ct) == 64

    def test_index_table(self):
        table = build_index_table("R.k", singleton([1, 2, 3]), salt=b"s")
        assert estimate_size(table) == len(table.to_bytes())

    def test_relation(self):
        r = Relation(schema("R", k="int"), [(1,), (2,)])
        assert estimate_size(r) > 0

    def test_fallback_never_raises(self):
        class Opaque:
            pass

        assert estimate_size(Opaque()) > 0
