"""Tests for the mediator's registry and query decomposition."""

import pytest

from repro.errors import QueryError
from repro.mediation.mediator import Mediator
from repro.relational.schema import schema

S1 = schema("R1", k="int", a="string")
S2 = schema("R2", k="int", b="string")
S3 = schema("R3", c="string")
S_SAME = schema("R4", k="int", z="string")
S_MULTI_1 = schema("M1", k="int", t="string", a="string")
S_MULTI_2 = schema("M2", k="int", t="string", b="string")


@pytest.fixture
def mediator():
    mediator = Mediator()
    mediator.register_source("S1", S1, S_MULTI_1)
    mediator.register_source("S2", S2, S3, S_MULTI_2)
    mediator.register_source("S1b", S_SAME)
    return mediator


class TestRegistry:
    def test_localize(self, mediator):
        assert mediator.localize("R1") == "S1"
        assert mediator.localize("R3") == "S2"

    def test_unknown_relation(self, mediator):
        with pytest.raises(QueryError):
            mediator.localize("R99")

    def test_duplicate_registration_rejected(self, mediator):
        with pytest.raises(QueryError):
            mediator.register_source("S3", S1)


class TestDecomposition:
    def test_basic_join(self, mediator):
        decomposition = mediator.decompose_join(
            "select * from R1 natural join R2"
        )
        assert decomposition.source_names == ("S1", "S2")
        assert decomposition.join_attributes == ("k",)
        assert [q.sql for q in decomposition.partial_queries] == [
            "select * from R1",
            "select * from R2",
        ]

    def test_multi_attribute_join(self, mediator):
        decomposition = mediator.decompose_join(
            "select * from M1 natural join M2"
        )
        assert decomposition.join_attributes == ("k", "t")

    def test_projection_and_selection_allowed(self, mediator):
        decomposition = mediator.decompose_join(
            "select k from R1 natural join R2 where k > 3"
        )
        assert len(decomposition.partial_queries) == 2

    def test_no_join_rejected(self, mediator):
        with pytest.raises(QueryError):
            mediator.decompose_join("select * from R1")

    def test_three_relations_rejected(self, mediator):
        with pytest.raises(QueryError):
            mediator.decompose_join(
                "select * from R1 natural join R2 natural join R4"
            )

    def test_disjoint_schemas_rejected(self, mediator):
        with pytest.raises(QueryError):
            mediator.decompose_join("select * from R1 natural join R3")

    def test_same_source_rejected(self, mediator):
        with pytest.raises(QueryError):
            mediator.decompose_join("select * from R2 natural join R3")

    def test_unknown_relation_rejected(self, mediator):
        with pytest.raises(QueryError):
            mediator.decompose_join("select * from R1 natural join R99")


class TestCredentialSelection:
    def test_all_forwarded_without_interests(self, mediator, ca, rsa_key):
        credential = ca.issue_credential({("role", "x")}, rsa_key.public_key())
        assert mediator.select_credentials("S1", [credential]) == [credential]

    def test_relevant_subset(self, ca, rsa_key):
        mediator = Mediator()
        mediator.register_source(
            "S1", S1, property_names=frozenset({"role"})
        )
        role_cred = ca.issue_credential({("role", "a")}, rsa_key.public_key())
        org_cred = ca.issue_credential({("org", "acme")}, rsa_key.public_key())
        selected = mediator.select_credentials("S1", [role_cred, org_cred])
        assert selected == [role_cred]

    def test_fallback_when_nothing_relevant(self, ca, rsa_key):
        mediator = Mediator()
        mediator.register_source(
            "S1", S1, property_names=frozenset({"clearance"})
        )
        org_cred = ca.issue_credential({("org", "acme")}, rsa_key.public_key())
        assert mediator.select_credentials("S1", [org_cred]) == [org_cred]
