"""Tests for credentials and the certification authority."""

import pytest

from repro.crypto import rsa
from repro.errors import CredentialError
from repro.mediation.ca import (
    CertificationAuthority,
    verify_credential,
    verify_identity_certificate,
)
from repro.mediation.credentials import (
    Credential,
    properties_of,
    public_keys_of,
)


@pytest.fixture(scope="module")
def client_key(rsa_key):
    return rsa_key.public_key()


@pytest.fixture(scope="module")
def credential(ca, client_key):
    return ca.issue_credential({("role", "physician")}, client_key)


class TestIssuance:
    def test_credential_verifies(self, ca, credential):
        assert verify_credential(credential, ca.verification_key)

    def test_empty_properties_rejected(self, ca, client_key):
        with pytest.raises(CredentialError):
            ca.issue_credential(set(), client_key)

    def test_identity_certificate_verifies(self, ca, client_key):
        certificate = ca.issue_identity_certificate("alice", client_key)
        assert verify_identity_certificate(certificate, ca.verification_key)
        assert certificate.identity == "alice"

    def test_credential_carries_no_identity(self, credential):
        # The paper: credentials link properties to keys but "in general
        # do not contain details on [the client's] identity".
        assert not hasattr(credential, "identity")


class TestVerificationFailures:
    def test_tampered_properties_rejected(self, ca, credential, client_key):
        forged = Credential(
            properties=frozenset({("role", "admin")}),
            public_key=credential.public_key,
            issuer=credential.issuer,
            signature=credential.signature,
        )
        assert not verify_credential(forged, ca.verification_key)

    def test_swapped_key_rejected(self, ca, credential):
        other_key = rsa.generate_keypair(1024).public_key()
        forged = Credential(
            properties=credential.properties,
            public_key=other_key,
            issuer=credential.issuer,
            signature=credential.signature,
        )
        assert not verify_credential(forged, ca.verification_key)

    def test_wrong_ca_rejected(self, credential):
        impostor = CertificationAuthority(name="evil-ca", key_bits=1024)
        assert not verify_credential(credential, impostor.verification_key)

    def test_tampered_signature_rejected(self, ca, credential):
        broken = Credential(
            properties=credential.properties,
            public_key=credential.public_key,
            issuer=credential.issuer,
            signature=bytes(len(credential.signature)),
        )
        assert not verify_credential(broken, ca.verification_key)


class TestCredentialHelpers:
    def test_property_access(self, credential):
        assert credential.has_property("role", "physician")
        assert not credential.has_property("role", "admin")
        assert credential.property_value("role") == "physician"
        assert credential.property_value("missing") is None

    def test_properties_of_union(self, ca, client_key):
        c1 = ca.issue_credential({("role", "a")}, client_key)
        c2 = ca.issue_credential({("role", "b"), ("org", "x")}, client_key)
        assert properties_of([c1, c2]) == frozenset(
            {("role", "a"), ("role", "b"), ("org", "x")}
        )

    def test_public_keys_deduplicated(self, ca, client_key):
        c1 = ca.issue_credential({("role", "a")}, client_key)
        c2 = ca.issue_credential({("role", "b")}, client_key)
        assert len(public_keys_of([c1, c2])) == 1

    def test_public_keys_empty_rejected(self):
        with pytest.raises(CredentialError):
            public_keys_of([])

    def test_fingerprint_stable(self, credential):
        assert credential.fingerprint() == credential.fingerprint()

    def test_payload_canonical_property_order(self, ca, client_key):
        c1 = ca.issue_credential({("a", "1"), ("b", "2")}, client_key)
        c2_payload = Credential(
            properties=frozenset({("b", "2"), ("a", "1")}),
            public_key=client_key,
            issuer=ca.name,
            signature=b"",
        ).signed_payload()
        assert c1.signed_payload() == c2_payload
