"""Tests for the message bus and transcript accounting."""

import pytest

from repro.errors import NetworkError
from repro.mediation.network import ENVELOPE_BYTES, Network


@pytest.fixture
def network():
    net = Network()
    for party in ("client", "mediator", "S1", "S2"):
        net.register(party)
    return net


class TestRegistration:
    def test_duplicate_rejected(self, network):
        with pytest.raises(NetworkError):
            network.register("client")

    def test_parties(self, network):
        assert set(network.parties()) == {"client", "mediator", "S1", "S2"}

    def test_unknown_view(self, network):
        with pytest.raises(NetworkError):
            network.view("nobody")


class TestSend:
    def test_basic_delivery(self, network):
        message = network.send("client", "mediator", "query", b"payload")
        assert message.sequence == 1
        assert message.size_bytes == ENVELOPE_BYTES + 7

    def test_unknown_endpoints(self, network):
        with pytest.raises(NetworkError):
            network.send("ghost", "mediator", "x", None)
        with pytest.raises(NetworkError):
            network.send("client", "ghost", "x", None)

    def test_views_updated(self, network):
        network.send("client", "mediator", "query", b"q")
        assert len(network.view("client").sent) == 1
        assert len(network.view("mediator").received) == 1
        assert network.view("mediator").received_kinds() == ["query"]

    def test_sequence_monotonic(self, network):
        first = network.send("client", "mediator", "a", None)
        second = network.send("mediator", "S1", "b", None)
        assert second.sequence == first.sequence + 1


class TestTranscriptQueries:
    @pytest.fixture
    def loaded(self, network):
        network.send("client", "mediator", "query", b"12345")
        network.send("mediator", "S1", "partial", b"123")
        network.send("mediator", "S2", "partial", b"123")
        network.send("S1", "mediator", "result", b"1234567890")
        network.send("mediator", "client", "answer", b"12")
        return network

    def test_messages_from(self, loaded):
        assert len(loaded.messages_from("mediator")) == 3
        assert len(loaded.messages_from("mediator", "S1")) == 1

    def test_messages_of_kind(self, loaded):
        assert len(loaded.messages_of_kind("partial")) == 2

    def test_total_bytes(self, loaded):
        payload_bytes = 5 + 3 + 3 + 10 + 2
        assert loaded.total_bytes() == payload_bytes + 5 * ENVELOPE_BYTES

    def test_bytes_between_undirected(self, loaded):
        link = loaded.bytes_between("client", "mediator")
        assert link == loaded.bytes_between("mediator", "client")
        assert link == 5 + 2 + 2 * ENVELOPE_BYTES

    def test_edges(self, loaded):
        assert loaded.edges() == {
            ("client", "mediator"),
            ("S1", "mediator"),
            ("S2", "mediator"),
        }

    def test_flow_summary(self, loaded):
        summary = loaded.flow_summary()
        assert len(summary) == 5
        assert "client -> mediator" in summary[0]


class TestInteractionCounting:
    def test_single_round_trip_is_one_interaction(self, network):
        network.send("client", "mediator", "q", None)
        network.send("mediator", "client", "a", None)
        assert network.interaction_count("client", "mediator") == 1
        assert network.interaction_count("mediator", "client") == 1

    def test_das_shape_client_interacts_twice(self, network):
        # query -> tables -> server query -> result: two client-initiated
        # interactions, the paper's "client has to interact twice".
        network.send("client", "mediator", "global_query", None)
        network.send("mediator", "client", "index_tables", None)
        network.send("client", "mediator", "server_query", None)
        network.send("mediator", "client", "server_result", None)
        assert network.interaction_count("client", "mediator") == 2

    def test_consecutive_sends_one_interaction(self, network):
        network.send("S1", "mediator", "part-1", None)
        network.send("S1", "mediator", "part-2", None)
        assert network.interaction_count("S1", "mediator") == 1

    def test_other_links_ignored(self, network):
        network.send("client", "mediator", "q", None)
        network.send("mediator", "S1", "p", None)
        network.send("S1", "mediator", "r", None)
        network.send("client", "mediator", "q2", None)
        # The S1 detour does not split the client's run of messages
        # on the client<->mediator link... but q2 comes after a mediator
        # send on a different link, so the client link sequence is
        # [client q, client q2] -> still one interaction.
        assert network.interaction_count("client", "mediator") == 1
