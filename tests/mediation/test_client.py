"""Tests for the client party and the preparatory phase."""

import pytest

from repro import setup_client
from repro.crypto import hybrid
from repro.crypto.homomorphic import PaillierScheme
from repro.errors import CredentialError, DecryptionError
from repro.mediation.ca import verify_credential, verify_identity_certificate


class TestSetup:
    def test_single_key_client(self, ca):
        client = setup_client(ca, "alice", {("role", "x")}, rsa_bits=1024)
        assert len(client.credentials) == 1
        assert len(client.rsa_keys) == 1
        assert len(client.identity_certificates) == 1

    def test_multi_key_client(self, ca):
        client = setup_client(
            ca, "bob", {("role", "x")}, key_count=3, rsa_bits=1024
        )
        assert len(client.credentials) == 3
        assert len({c.fingerprint() for c in client.credentials}) == 3
        assert len(client.credential_public_keys()) == 3

    def test_credentials_verify(self, ca):
        client = setup_client(ca, "carol", {("role", "y")}, rsa_bits=1024)
        assert verify_credential(client.credentials[0], ca.verification_key)
        assert verify_identity_certificate(
            client.identity_certificates[0], ca.verification_key
        )

    def test_identity_only_in_certificate(self, ca):
        client = setup_client(ca, "dave", {("role", "z")}, rsa_bits=1024)
        assert client.identity_certificates[0].identity == "dave"
        # The credential itself carries only properties.
        assert ("role", "z") in client.credentials[0].properties


class TestHybridDecryption:
    def test_decrypts_with_matching_key(self, client):
        keys = client.credential_public_keys()
        ciphertext = hybrid.encrypt(keys, b"partial result")
        assert client.decrypt_hybrid(ciphertext) == b"partial result"

    def test_rejects_foreign_ciphertext(self, ca, client):
        stranger = setup_client(ca, "eve", {("role", "e")}, rsa_bits=1024)
        ciphertext = hybrid.encrypt(
            stranger.credential_public_keys(), b"not for you"
        )
        with pytest.raises(DecryptionError):
            client.decrypt_hybrid(ciphertext)


class TestHomomorphicKeyMaterial:
    def test_present_when_configured(self, client):
        public_key = client.homomorphic_public_key
        ct = client.homomorphic_scheme.encrypt(public_key, 42)
        assert client.decrypt_homomorphic(ct) == 42

    def test_absent_raises(self, ca):
        bare = setup_client(ca, "frank", {("role", "f")}, rsa_bits=1024)
        with pytest.raises(CredentialError):
            _ = bare.homomorphic_public_key
        with pytest.raises(CredentialError):
            bare.decrypt_homomorphic(None)

    def test_scheme_is_client_specific(self, ca):
        scheme = PaillierScheme(256)
        client = setup_client(
            ca, "grace", {("role", "g")}, rsa_bits=1024,
            homomorphic_scheme=scheme,
        )
        assert client.homomorphic_scheme is scheme
