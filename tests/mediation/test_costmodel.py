"""Tests for the network cost model."""

import pytest

from repro.errors import ParameterError
from repro.mediation.costmodel import INTERNET, LAN, PRESETS, WAN, NetworkCostModel
from repro.mediation.network import ENVELOPE_BYTES, Network


@pytest.fixture
def network():
    net = Network()
    for party in ("a", "b", "c"):
        net.register(party)
    net.send("a", "b", "k", b"x" * (1000 - ENVELOPE_BYTES))
    net.send("b", "c", "k", b"x" * (2000 - ENVELOPE_BYTES))
    net.send("c", "a", "k", b"x" * (3000 - ENVELOPE_BYTES))
    return net


class TestModel:
    def test_message_cost(self):
        model = NetworkCostModel("m", latency_seconds=0.01,
                                 bandwidth_bytes_per_second=1000)
        assert model.message_cost(500) == pytest.approx(0.01 + 0.5)

    def test_transcript_cost_serial(self, network):
        model = NetworkCostModel("m", latency_seconds=0.1,
                                 bandwidth_bytes_per_second=1e6)
        expected = 3 * 0.1 + (1000 + 2000 + 3000) / 1e6
        assert model.transcript_cost(network) == pytest.approx(expected)

    def test_link_cost(self, network):
        model = NetworkCostModel("m", latency_seconds=0.0,
                                 bandwidth_bytes_per_second=1000)
        assert model.link_cost(network, "a", "b") == pytest.approx(1.0)
        assert model.link_cost(network, "b", "a") == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            NetworkCostModel("bad", latency_seconds=-1,
                             bandwidth_bytes_per_second=1)
        with pytest.raises(ParameterError):
            NetworkCostModel("bad", latency_seconds=0,
                             bandwidth_bytes_per_second=0)


class TestPresets:
    def test_ordering(self, network):
        lan = LAN.transcript_cost(network)
        wan = WAN.transcript_cost(network)
        internet = INTERNET.transcript_cost(network)
        assert lan < wan < internet

    def test_registry(self):
        assert set(PRESETS) == {"lan", "wan", "internet"}
        assert PRESETS["wan"] is WAN


class TestProtocolRankingUnderModels:
    def test_latency_shifts_the_balance(self, ca, client, workload):
        """On a LAN bytes dominate; at very high latency the *message
        count* dominates, and DAS (8 messages) beats PM (16+)."""
        from repro import Federation, run_join_query
        from repro.mediation.access_control import allow_all

        def run(protocol):
            federation = Federation(ca=ca)
            federation.add_source("S1", [(workload.relation_1, allow_all())])
            federation.add_source("S2", [(workload.relation_2, allow_all())])
            federation.attach_client(client)
            return run_join_query(
                federation, "select * from R1 natural join R2",
                protocol=protocol,
            )

        das = run("das")
        pm = run("private-matching")
        satellite = NetworkCostModel(
            "satellite", latency_seconds=10.0,
            bandwidth_bytes_per_second=1e9,
        )
        assert satellite.transcript_cost(das.network) < (
            satellite.transcript_cost(pm.network)
        )
        # With pure bandwidth costs the ranking flips for this workload:
        # DAS ships the big cross-bucket superset.
        bulk = NetworkCostModel(
            "bulk", latency_seconds=0.0, bandwidth_bytes_per_second=1e3
        )
        assert bulk.transcript_cost(das.network) > (
            bulk.transcript_cost(pm.network)
        )
