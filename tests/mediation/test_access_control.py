"""Tests for credential-based access control and datasources."""

import pytest

from repro.errors import AccessDenied, CredentialError, QueryError
from repro.mediation.access_control import (
    AccessPolicy,
    AccessRule,
    allow_all,
    require,
)
from repro.mediation.datasource import DataSource
from repro.relational.algebra import PartialQuery
from repro.relational.conditions import Comparison
from repro.relational.relation import Relation
from repro.relational.schema import schema

S = schema("R", k="int", department="string")
DATA = Relation(
    S,
    [
        (1, "oncology"),
        (2, "cardiology"),
        (3, "oncology"),
    ],
)


@pytest.fixture(scope="module")
def physician_credential(ca, rsa_key):
    return ca.issue_credential({("role", "physician")}, rsa_key.public_key())


@pytest.fixture(scope="module")
def admin_credential(ca, rsa_key):
    return ca.issue_credential(
        {("role", "admin"), ("clearance", "top")}, rsa_key.public_key()
    )


class TestPolicyEvaluation:
    def test_allow_all(self, physician_credential):
        assert allow_all().evaluate(DATA, [physician_credential]) == DATA

    def test_unsatisfied_denied(self, physician_credential):
        policy = require(("role", "admin"))
        with pytest.raises(AccessDenied):
            policy.evaluate(DATA, [physician_credential])

    def test_row_filtering(self, physician_credential):
        policy = require(
            ("role", "physician"),
            condition=Comparison("department", "=", "oncology"),
        )
        permitted = policy.evaluate(DATA, [physician_credential])
        assert set(permitted.rows) == {(1, "oncology"), (3, "oncology")}

    def test_union_of_satisfied_rules(self, admin_credential):
        policy = AccessPolicy(
            rules=[
                AccessRule(
                    frozenset({("role", "admin")}),
                    Comparison("k", "=", 1),
                ),
                AccessRule(
                    frozenset({("clearance", "top")}),
                    Comparison("k", "=", 2),
                ),
            ]
        )
        permitted = policy.evaluate(DATA, [admin_credential])
        assert {row[0] for row in permitted} == {1, 2}

    def test_satisfied_rule_with_zero_rows_still_authorizes(
        self, physician_credential
    ):
        policy = require(
            ("role", "physician"), condition=Comparison("k", "=", 999)
        )
        assert len(policy.evaluate(DATA, [physician_credential])) == 0

    def test_multiple_required_properties(self, admin_credential,
                                          physician_credential):
        policy = require(("role", "admin"), ("clearance", "top"))
        assert len(policy.evaluate(DATA, [admin_credential])) == 3
        with pytest.raises(AccessDenied):
            policy.evaluate(DATA, [physician_credential])

    def test_properties_pool_across_credentials(
        self, ca, rsa_key, physician_credential
    ):
        # Two credentials each assert one property; together they satisfy
        # a two-property rule.
        clearance = ca.issue_credential(
            {("clearance", "top")}, rsa_key.public_key()
        )
        policy = require(("role", "physician"), ("clearance", "top"))
        permitted = policy.evaluate(DATA, [physician_credential, clearance])
        assert len(permitted) == 3


class TestDataSource:
    @pytest.fixture
    def source(self, ca):
        source = DataSource(name="S1", ca_key=ca.verification_key)
        source.add_relation(
            DATA,
            require(
                ("role", "physician"),
                condition=Comparison("department", "=", "oncology"),
            ),
        )
        return source

    def test_execute_with_valid_credentials(self, source, physician_credential):
        result = source.execute_partial_query(
            PartialQuery("R"), [physician_credential]
        )
        assert set(result.rows) == {(1, "oncology"), (3, "oncology")}

    def test_unknown_relation(self, source, physician_credential):
        with pytest.raises(QueryError):
            source.execute_partial_query(
                PartialQuery("missing"), [physician_credential]
            )

    def test_denied_without_properties(self, source, ca, rsa_key):
        wrong = ca.issue_credential({("role", "student")}, rsa_key.public_key())
        with pytest.raises(AccessDenied):
            source.execute_partial_query(PartialQuery("R"), [wrong])

    def test_tampered_credential_hard_error(self, source, physician_credential):
        from repro.mediation.credentials import Credential

        forged = Credential(
            properties=frozenset({("role", "physician")}),
            public_key=physician_credential.public_key,
            issuer=physician_credential.issuer,
            signature=b"\x00" * len(physician_credential.signature),
        )
        with pytest.raises(CredentialError):
            source.execute_partial_query(PartialQuery("R"), [forged])

    def test_no_ca_key_configured(self, physician_credential):
        source = DataSource(name="naked")
        source.add_relation(DATA)
        with pytest.raises(CredentialError):
            source.execute_partial_query(PartialQuery("R"), [physician_credential])

    def test_relevant_property_names_collected(self, source):
        assert "role" in source.relevant_property_names

    def test_partial_query_condition_pushdown(self, source, physician_credential):
        query = PartialQuery("R", Comparison("k", ">", 1))
        result = source.execute_partial_query(query, [physician_credential])
        # Policy filter AND pushdown condition both apply.
        assert set(result.rows) == {(3, "oncology")}
