"""Tests for the one-shot evaluation report."""

import pytest

from repro.analysis.report import full_report

QUERY = "select * from R1 natural join R2"


@pytest.fixture(scope="module")
def document(ca, client, workload):
    from repro import Federation
    from repro.mediation.access_control import allow_all

    def factory():
        federation = Federation(ca=ca)
        federation.add_source("S1", [(workload.relation_1, allow_all())])
        federation.add_source("S2", [(workload.relation_2, allow_all())])
        federation.attach_client(client)
        return federation

    return full_report(
        factory, QUERY, [workload.relation_1, workload.relation_2]
    )


class TestFullReport:
    def test_contains_all_sections(self, document):
        for heading in (
            "## Correctness",
            "## Table 1",
            "## Table 2",
            "## Section 6",
            "## Conformance and confidentiality",
        ):
            assert heading in document

    def test_correctness_verdicts(self, document):
        assert "same global result: YES" in document
        assert "Row-level agreement across protocols: YES" in document

    def test_all_protocols_present(self, document):
        for protocol in ("das[client]", "commutative", "private-matching"):
            assert protocol in document

    def test_conformance_lines(self, document):
        assert document.count("listing-conformant=True") == 3
        assert document.count("plaintext-leaks=0") == 3

    def test_table2_content(self, document):
        assert "homomorphic encryption and random numbers" in document

    def test_is_markdown(self, document):
        assert document.startswith("# ")
        assert "```" in document


class TestCLIReport:
    def test_report_to_file(self, tmp_path, capsys):
        from repro.cli import main

        output = str(tmp_path / "report.md")
        code = main([
            "report", "--output", output,
            "--domain", "4", "--overlap", "2", "--rows-per-value", "1",
            "--rsa-bits", "1024", "--paillier-bits", "1024",
        ])
        assert code == 0
        content = open(output, encoding="utf-8").read()
        assert "## Table 1" in content
