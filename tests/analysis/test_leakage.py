"""Tests for the Table-1 leakage analysis (E1)."""

import pytest

from repro import DASConfig, run_join_query
from repro.analysis.leakage import analyze, table1, verify_no_plaintext_leak

QUERY = "select * from R1 natural join R2"
STRING_QUERY = "select * from clinic natural join lab"


@pytest.fixture(scope="module")
def das_result(make_federation_module, workload):
    return run_join_query(make_federation_module(workload), QUERY, protocol="das")


@pytest.fixture(scope="module")
def commutative_result(make_federation_module, workload):
    return run_join_query(
        make_federation_module(workload), QUERY, protocol="commutative"
    )


@pytest.fixture(scope="module")
def pm_result(make_federation_module, workload):
    return run_join_query(
        make_federation_module(workload), QUERY, protocol="private-matching"
    )


@pytest.fixture(scope="module")
def make_federation_module(ca, client):
    from repro import Federation
    from repro.mediation.access_control import allow_all

    def factory(workload):
        federation = Federation(ca=ca)
        federation.add_source("S1", [(workload.relation_1, allow_all())])
        federation.add_source("S2", [(workload.relation_2, allow_all())])
        federation.attach_client(client)
        return federation

    return factory


class TestDASRow:
    """Table 1, row 1: client gets a superset + index tables; the
    mediator learns |R_i| and |R_C|."""

    def test_mediator_learns_relation_sizes(self, das_result, workload):
        report = analyze(das_result)
        assert report.mediator_learns["|R1|"] == len(workload.relation_1)
        assert report.mediator_learns["|R2|"] == len(workload.relation_2)

    def test_mediator_learns_rc_size(self, das_result):
        report = analyze(das_result)
        assert report.mediator_learns["|R_C|"] == das_result.artifacts[
            "server_result_size"
        ]

    def test_rc_upper_bounds_result(self, das_result):
        report = analyze(das_result)
        assert report.mediator_learns["|R_C|"] >= len(das_result.global_result)

    def test_client_receives_superset_and_tables(self, das_result):
        report = analyze(das_result)
        assert (
            report.client_learns["superset_rows_received"]
            >= report.client_learns["exact_result_rows"]
        )
        assert report.client_learns["index_tables_received"] == 2


class TestCommutativeRow:
    """Table 1, row 2: client gets only the exact result; the mediator
    learns |domactive| and the intersection size."""

    def test_mediator_learns_domain_sizes(self, commutative_result, workload):
        report = analyze(commutative_result)
        assert report.mediator_learns["|domactive@S1|"] == len(
            workload.relation_1.active_domain("k")
        )
        assert report.mediator_learns["|domactive@S2|"] == len(
            workload.relation_2.active_domain("k")
        )

    def test_mediator_learns_intersection(self, commutative_result, workload):
        report = analyze(commutative_result)
        dom_1 = set(workload.relation_1.active_domain("k"))
        dom_2 = set(workload.relation_2.active_domain("k"))
        assert report.mediator_learns["intersection_size"] == len(dom_1 & dom_2)

    def test_intersection_lower_bounds_result(self, commutative_result):
        report = analyze(commutative_result)
        assert report.mediator_learns["intersection_size"] <= len(
            commutative_result.global_result
        )

    def test_client_gets_exact_sets_only(self, commutative_result, workload):
        report = analyze(commutative_result)
        dom_1 = set(workload.relation_1.active_domain("k"))
        dom_2 = set(workload.relation_2.active_domain("k"))
        assert report.client_learns["matched_tuple_set_pairs"] == len(dom_1 & dom_2)


class TestPMRow:
    """Table 1, row 3: mediator learns |domactive| (polynomial degrees);
    client receives n + m values but deciphers only the join."""

    def test_mediator_learns_degrees(self, pm_result, workload):
        report = analyze(pm_result)
        assert report.mediator_learns["|domactive@S1|"] == len(
            workload.relation_1.active_domain("k")
        )
        assert report.mediator_learns["|domactive@S2|"] == len(
            workload.relation_2.active_domain("k")
        )

    def test_client_receives_all_encrypted_values(self, pm_result, workload):
        report = analyze(pm_result)
        n = len(workload.relation_1.active_domain("k"))
        m = len(workload.relation_2.active_domain("k"))
        assert report.client_learns["encrypted_values_received"] == n + m


class TestPlaintextConfidentiality:
    """The shared claim: the mediator never sees plaintext tuples."""

    @pytest.fixture(scope="class")
    def string_results(self, make_federation_module, string_workload):
        return {
            protocol: run_join_query(
                make_federation_module(string_workload),
                STRING_QUERY,
                protocol=protocol,
            )
            for protocol in ("das", "commutative", "private-matching")
        }

    def test_no_leak_in_any_protocol(self, string_results, string_workload):
        relations = [string_workload.relation_1, string_workload.relation_2]
        for protocol, result in string_results.items():
            assert verify_no_plaintext_leak(result, relations) == [], protocol

    def test_mediator_setting_leaks(
        self, make_federation_module, string_workload
    ):
        result = run_join_query(
            make_federation_module(string_workload),
            STRING_QUERY,
            protocol="das",
            config=DASConfig(setting="mediator"),
        )
        leaks = verify_no_plaintext_leak(
            result, [string_workload.relation_1, string_workload.relation_2]
        )
        # Every join value in either active domain is exposed via the
        # plaintext index tables.
        assert len(leaks) > 0


class TestRendering:
    def test_table1_renders_all_rows(self, das_result, commutative_result, pm_result):
        text = table1([analyze(r) for r in (das_result, commutative_result, pm_result)])
        assert "das[client]" in text
        assert "commutative" in text
        assert "private-matching" in text
        assert "|R_C|" in text
