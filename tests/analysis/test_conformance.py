"""Tests for Listing/Figure conformance checking (E3/E4)."""

import pytest

from repro import DASConfig, run_join_query
from repro.analysis.conformance import (
    architecture_edges,
    check_flow,
    expected_flow,
)
from repro.analysis.views import client_party, mediator_party, source_parties
from repro.errors import ProtocolError

QUERY = "select * from R1 natural join R2"


@pytest.fixture(scope="module")
def factory(ca, client, workload):
    from repro import Federation
    from repro.mediation.access_control import allow_all

    def make():
        federation = Federation(ca=ca)
        federation.add_source("S1", [(workload.relation_1, allow_all())])
        federation.add_source("S2", [(workload.relation_2, allow_all())])
        federation.attach_client(client)
        return federation

    return make


class TestFlowConformance:
    @pytest.mark.parametrize(
        "protocol,config",
        [
            ("das", None),
            ("das", DASConfig(setting="mediator")),
            ("commutative", None),
            ("private-matching", None),
        ],
    )
    def test_transcripts_conform(self, factory, protocol, config):
        result = run_join_query(factory(), QUERY, protocol=protocol, config=config)
        flow = check_flow(result)
        assert flow.conforms, flow.mismatches

    def test_expected_flow_unknown_protocol(self):
        with pytest.raises(ProtocolError):
            expected_flow("quantum")

    def test_mismatch_detection(self, factory):
        result = run_join_query(factory(), QUERY, protocol="commutative")
        # Inject an extra out-of-protocol message and re-check.
        result.network.send("S1", "mediator", "commutative_m_set", [])
        flow = check_flow(result)
        assert not flow.conforms
        assert any("flow length" in m for m in flow.mismatches)


class TestArchitecture:
    @pytest.mark.parametrize(
        "protocol", ["das", "commutative", "private-matching"]
    )
    def test_star_topology(self, factory, protocol):
        result = run_join_query(factory(), QUERY, protocol=protocol)
        facts = architecture_edges(result)
        assert all(facts.values()), facts

    def test_role_detection(self, factory, client):
        result = run_join_query(factory(), QUERY, protocol="das")
        network = result.network
        assert client_party(network) == client.name
        assert mediator_party(network) == "mediator"
        assert source_parties(network) == ("S1", "S2")

    def test_sources_never_talk_directly(self, factory):
        # Even in the commutative protocol - where sources process each
        # other's messages - everything routes through the mediator.
        result = run_join_query(factory(), QUERY, protocol="commutative")
        for message in result.network.transcript:
            assert not (
                message.sender in ("S1", "S2")
                and message.receiver in ("S1", "S2")
            )
