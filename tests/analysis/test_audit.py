"""Tests for the differential leakage auditor and its artifact."""

import pytest

from repro import Federation
from repro.analysis.audit import (
    AUDIT_PROTOCOLS,
    DEFAULT_GATE_RULES,
    LEAKAGE_SCHEMA,
    AuditConfig,
    adjacent_workload,
    differential_audit,
    leakage_json,
    trace_distances,
)
from repro.errors import ParameterError
from repro.mediation.access_control import allow_all
from repro.relational.datagen import WorkloadSpec, generate
from repro.telemetry.observables import ObservableTrace, ObservedMessage

#: Small-but-joinable audit workload (6 runs per protocol audited).
MINI_SPEC = WorkloadSpec(
    domain_1=4,
    domain_2=4,
    overlap=2,
    rows_per_value_1=1,
    rows_per_value_2=1,
    seed=3,
)


@pytest.fixture
def audit_factory(ca, client):
    """Reuse the session's key material across audit runs."""

    def factory(workload, network):
        federation = Federation(ca=ca, network=network)
        federation.add_source("S1", [(workload.relation_1, allow_all())])
        federation.add_source("S2", [(workload.relation_2, allow_all())])
        federation.attach_client(client)
        return federation

    return factory


class TestAdjacentWorkload:
    def test_moves_exactly_one_join_value(self):
        base = generate(MINI_SPEC)
        adjacent, perturbation = adjacent_workload(base)
        victim = base.shared_values[0]
        join = base.spec.join_attribute
        # Same shape, one value moved out of the intersection.
        assert len(adjacent.relation_1.rows) == len(base.relation_1.rows)
        assert adjacent.relation_2.rows == base.relation_2.rows
        assert victim not in adjacent.relation_1.active_domain(join)
        assert victim not in adjacent.shared_values
        assert len(adjacent.shared_values) == len(base.shared_values) - 1
        assert perturbation["rows_rewritten"] >= 1
        assert perturbation["replaced_value"] == str(victim)

    def test_replacement_outside_both_active_domains(self):
        base = generate(MINI_SPEC)
        adjacent, perturbation = adjacent_workload(base)
        join = base.spec.join_attribute
        replacement = perturbation["replacement"]
        taken = {
            str(value)
            for value in (
                *base.relation_1.active_domain(join),
                *base.relation_2.active_domain(join),
            )
        }
        assert replacement not in taken

    def test_requires_a_shared_value(self):
        base = generate(MINI_SPEC)
        disjoint = type(base)(
            spec=base.spec,
            relation_1=base.relation_1,
            relation_2=base.relation_2,
            shared_values=(),
        )
        with pytest.raises(ParameterError):
            adjacent_workload(disjoint)


class TestAuditConfig:
    def test_rejects_unknown_transport(self):
        with pytest.raises(ParameterError):
            AuditConfig(transport="carrier-pigeon")

    def test_rejects_unknown_protocol(self):
        with pytest.raises(ParameterError):
            AuditConfig(protocols=("merge-join",))


class TestTraceDistances:
    def trace(self, events, cardinalities=None):
        trace = ObservableTrace("mediator", "das", "Network")
        for position, (link, kind, size) in enumerate(events):
            trace.messages.append(
                ObservedMessage(position, link, kind, "received", size)
            )
        for kind, sizes in (cardinalities or {}).items():
            trace.result_sizes[kind] = sizes
        return trace

    def test_identical_traces_are_zero_distance(self):
        events = [("a->b", "q", 64), ("b->a", "r", 128)]
        distances = trace_distances(self.trace(events), self.trace(events))
        assert all(value == 0.0 for value in distances.values())
        assert "timing_tv" not in distances

    def test_extra_message_moves_every_count_channel(self):
        base = self.trace([("a->b", "q", 64)])
        adjacent = self.trace([("a->b", "q", 64), ("a->b", "q", 64)])
        distances = trace_distances(base, adjacent)
        assert distances["max_count_delta"] == 1.0
        assert distances["max_bucket_count_delta"] == 1.0
        assert distances["sequence_divergence"] == 0.5
        assert distances["messages_tv"] == 0.0  # same support, same mass

    def test_cardinality_channel(self):
        base = self.trace([], cardinalities={"result": [10]})
        adjacent = self.trace([], cardinalities={"result": [14]})
        assert trace_distances(base, adjacent)["max_cardinality_delta"] == 4.0

    def test_timing_channel_only_on_request(self):
        base = self.trace([])
        base.latency_buckets = {"join": {"le_1": 1}}
        adjacent = self.trace([])
        adjacent.latency_buckets = {"join": {"le_inf": 1}}
        assert "timing_tv" not in trace_distances(base, adjacent)
        assert trace_distances(base, adjacent, True)["timing_tv"] == 1.0


class TestDifferentialAudit:
    @pytest.fixture(scope="class")
    def document(self, ca, client):
        def factory(workload, network):
            federation = Federation(ca=ca, network=network)
            federation.add_source("S1", [(workload.relation_1, allow_all())])
            federation.add_source("S2", [(workload.relation_2, allow_all())])
            federation.attach_client(client)
            return federation

        return differential_audit(
            AuditConfig(spec=MINI_SPEC), federation_factory=factory
        )

    def test_artifact_schema(self, document):
        assert document["schema"] == LEAKAGE_SCHEMA
        assert document["transport"] == "bus"
        assert document["canary"] is False
        assert set(document["protocols"]) == set(AUDIT_PROTOCOLS)
        assert document["workload"]["perturbation"]["rows_rewritten"] >= 1

    def test_every_adversary_audited_per_protocol(self, document):
        for entry in document["protocols"].values():
            assert set(entry["adversaries"]) == {
                "network", "mediator", "datasource:S1", "datasource:S2",
            }

    def test_gate_covers_every_gated_metric(self, document):
        gate = document["gate"]
        expected = (
            len(document["protocols"]) * 4 * len(DEFAULT_GATE_RULES)
        )
        assert len(gate) == expected
        for key, rule in gate.items():
            protocol, adversary, metric = key.split("/")
            assert protocol in AUDIT_PROTOCOLS
            assert metric in DEFAULT_GATE_RULES
            assert rule["direction"] == "max"

    def test_table1_ordering_is_measured(self, document):
        """DAS leaks the most to the mediator, private matching the
        least — Table 1's qualitative ranking as measured distances."""
        mediator = {
            protocol: entry["adversaries"]["mediator"]["distances"]
            for protocol, entry in document["protocols"].items()
        }
        assert mediator["das"]["max_cardinality_delta"] > 0
        assert mediator["private-matching"]["max_count_delta"] == 0.0
        assert mediator["private-matching"]["messages_tv"] == 0.0

    def test_deterministic_across_runs(self, document, audit_factory):
        again = differential_audit(
            AuditConfig(spec=MINI_SPEC), federation_factory=audit_factory
        )
        assert leakage_json(document) == leakage_json(again)

    def test_canary_breaches_the_declared_gate(self, document, audit_factory):
        from repro.telemetry.observables import size_bucket

        canary = differential_audit(
            AuditConfig(spec=MINI_SPEC, canary=True, protocols=("das",)),
            federation_factory=audit_factory,
        )
        kinds = canary["protocols"]["das"]["adversaries"]["network"]["base"][
            "kinds"
        ]
        assert any("leak_pad" in kind for kind in kinds)
        # The pad count tracks body cardinality, so the count channel
        # must exceed the honest document's gate bound.
        distances = canary["protocols"]["das"]["adversaries"]["network"][
            "distances"
        ]
        rule = document["gate"]["das/network/max_count_delta"]
        honest = document["protocols"]["das"]["adversaries"]["network"][
            "distances"
        ]["max_count_delta"]
        bound = honest * (1 + rule["tolerance"]) + rule["slack"]
        assert distances["max_count_delta"] > bound
        assert size_bucket(32) == 64  # pads land in the floor bucket

    def test_tcp_and_bus_expose_identical_interaction_patterns(
        self, audit_factory, document
    ):
        """The capture path is the shared transcript, so the per-kind
        message counts must match across transports (sizes may bucket
        differently — TCP measures real wire bytes)."""
        tcp = differential_audit(
            AuditConfig(
                spec=MINI_SPEC, transport="tcp", protocols=("commutative",)
            ),
            federation_factory=audit_factory,
        )
        bus = document["protocols"]["commutative"]["adversaries"]
        over_tcp = tcp["protocols"]["commutative"]["adversaries"]
        for adversary in bus:
            bus_kinds = {
                key.split("|")[1]: count
                for key, count in bus[adversary]["base"]["kinds"].items()
            }
            tcp_kinds = {
                key.split("|")[1]: count
                for key, count in over_tcp[adversary]["base"]["kinds"].items()
            }
            assert bus_kinds == tcp_kinds, adversary
