"""Tests for the JSON audit export."""

import json

import pytest

from repro import run_join_query
from repro.analysis.export import export_run, export_run_json

QUERY = "select * from R1 natural join R2"


@pytest.fixture(scope="module")
def result(ca, client, workload):
    from repro import Federation
    from repro.mediation.access_control import allow_all

    federation = Federation(ca=ca)
    federation.add_source("S1", [(workload.relation_1, allow_all())])
    federation.add_source("S2", [(workload.relation_2, allow_all())])
    federation.attach_client(client)
    return run_join_query(federation, QUERY, protocol="commutative")


class TestExport:
    def test_record_shape(self, result):
        record = export_run(result)
        assert record["protocol"] == "commutative"
        assert record["query"] == QUERY
        assert record["result_rows"] == len(result.global_result)
        assert record["totals"]["messages"] == len(result.network.transcript)
        assert record["totals"]["bytes"] == result.total_bytes()

    def test_transcript_entries(self, result):
        record = export_run(result)
        transcript = record["transcript"]
        assert len(transcript) == len(result.network.transcript)
        first = transcript[0]
        assert first["kind"] == "global_query"
        assert set(first) == {
            "sequence", "sender", "receiver", "kind", "size_bytes",
            "body_fingerprint",
        }

    def test_no_payload_bytes_in_export(self, result, workload):
        # The export must never contain tuple plaintext (fingerprints only).
        text = export_run_json(result)
        for row in workload.relation_1:
            for value in row:
                if isinstance(value, str) and len(value) > 4:
                    assert value not in text

    def test_fingerprints_stable(self, result):
        a = export_run(result)["transcript"][0]["body_fingerprint"]
        b = export_run(result)["transcript"][0]["body_fingerprint"]
        assert a == b

    def test_json_round_trip(self, result):
        parsed = json.loads(export_run_json(result))
        assert parsed["leakage"]["mediator_learns"]["intersection_size"] >= 0
        assert "commutative encryption" in parsed["primitives"]["categories"]

    def test_timings_present(self, result):
        record = export_run(result)
        assert record["timings"]
        assert all(t["seconds"] >= 0 for t in record["timings"])
