"""Unit tests for the CI gate scripts' tolerance arithmetic and errors.

``scripts/check_perf_regression.py`` and
``scripts/check_leakage_regression.py`` are the last line of defence in
CI; a malformed artifact must produce a clear :class:`GateError` (exit
code 2), never a bare ``KeyError`` traceback, and the bound arithmetic
(``baseline * (1 ± tolerance) ± slack``) must be exact in both
directions.
"""

import pathlib
import sys

import pytest

SCRIPTS = pathlib.Path(__file__).resolve().parents[2] / "scripts"
sys.path.insert(0, str(SCRIPTS))

import check_leakage_regression as leakage  # noqa: E402
import check_perf_regression as perf  # noqa: E402
from check_perf_regression import GateError, check_metric  # noqa: E402


def leakage_doc(transport="bus", hardened=False, distance=0.0, gate=None):
    return {
        "schema": leakage.SCHEMA,
        "transport": transport,
        "hardened": hardened,
        "workload": {"spec": {"seed": 7}},
        "protocols": {
            "das": {
                "adversaries": {
                    "network": {"distances": {"messages_tv": distance}}
                }
            }
        },
        "gate": gate if gate is not None else {
            "das/network/messages_tv": {
                "direction": "max", "tolerance": 0.0, "slack": 0.01,
            }
        },
    }


class TestCheckMetricArithmetic:
    def test_max_bound_is_baseline_scaled_plus_slack(self):
        rule = {"direction": "max", "tolerance": 0.25, "slack": 0.05}
        passed, _ = check_metric("m", rule, 1.0, 1.30)
        assert passed  # bound = 1.0 * 1.25 + 0.05 = 1.30 inclusive
        passed, line = check_metric("m", rule, 1.0, 1.3001)
        assert not passed and "FAIL" in line

    def test_min_bound_is_baseline_scaled_minus_slack(self):
        rule = {"direction": "min", "tolerance": 0.1, "slack": 0.2}
        passed, _ = check_metric("m", rule, 10.0, 8.8)
        assert passed  # bound = 10 * 0.9 - 0.2 = 8.8 inclusive
        passed, _ = check_metric("m", rule, 10.0, 8.79)
        assert not passed

    def test_zero_baseline_zero_slack_is_exact(self):
        rule = {"direction": "max", "tolerance": 0.0, "slack": 0.0}
        assert check_metric("m", rule, 0.0, 0.0)[0]
        assert not check_metric("m", rule, 0.0, 1e-9)[0]

    def test_unknown_direction_is_a_gate_error(self):
        with pytest.raises(GateError, match="unknown direction"):
            check_metric("m", {"direction": "sideways"}, 1.0, 1.0)


class TestPerfCompareDiagnostics:
    BASE = {
        "gate": {"ratio": {"direction": "max", "tolerance": 0.1}},
        "metrics": {"ratio": 2.0},
    }

    def test_missing_gate_in_baseline_is_gate_error(self):
        with pytest.raises(GateError, match="missing 'gate'"):
            perf.compare({"metrics": {}}, {"metrics": {}})

    def test_missing_metrics_in_candidate_is_gate_error(self):
        with pytest.raises(GateError, match="missing 'metrics'"):
            perf.compare(self.BASE, {"bench": "x"})

    def test_non_numeric_gated_value_is_gate_error(self):
        candidate = {"metrics": {"ratio": "fast"}}
        with pytest.raises(GateError, match="not numeric"):
            perf.compare(self.BASE, candidate)

    def test_gated_metric_missing_from_candidate_fails_not_raises(self):
        passed, lines = perf.compare(self.BASE, {"metrics": {}})
        assert not passed
        assert any("missing from candidate" in line for line in lines)

    def test_within_tolerance_passes(self):
        passed, _ = perf.compare(self.BASE, {"metrics": {"ratio": 2.2}})
        assert passed


class TestLeakageCompare:
    def test_matching_documents_pass(self):
        passed, _ = leakage.compare(leakage_doc(), leakage_doc())
        assert passed

    def test_distance_above_slack_fails(self):
        passed, lines = leakage.compare(
            leakage_doc(), leakage_doc(distance=0.02)
        )
        assert not passed
        assert any("FAIL" in line for line in lines)

    def test_transport_mismatch_is_gate_error(self):
        with pytest.raises(GateError, match="transport mismatch"):
            leakage.compare(leakage_doc("bus"), leakage_doc("tcp"))

    def test_any_transport_baseline_gates_both_carriers(self):
        for transport in ("bus", "tcp"):
            passed, _ = leakage.compare(
                leakage_doc("any"), leakage_doc(transport)
            )
            assert passed, transport

    def test_hardened_flag_mismatch_is_gate_error(self):
        with pytest.raises(GateError, match="hardened-flag mismatch"):
            leakage.compare(
                leakage_doc(hardened=True), leakage_doc(hardened=False)
            )

    def test_missing_protocols_is_gate_error_not_keyerror(self):
        document = leakage_doc()
        del document["protocols"]
        with pytest.raises(GateError, match="missing 'protocols'"):
            leakage.flatten_distances(document)

    def test_gated_distance_missing_from_candidate_fails(self):
        candidate = leakage_doc()
        candidate["protocols"]["das"]["adversaries"] = {}
        passed, lines = leakage.compare(leakage_doc(), candidate)
        assert not passed
        assert any("missing from candidate" in line for line in lines)

    def test_workload_mismatch_is_gate_error(self):
        candidate = leakage_doc()
        candidate["workload"] = {"spec": {"seed": 8}}
        with pytest.raises(GateError, match="workload mismatch"):
            leakage.compare(leakage_doc(), candidate)


class TestLeakageMain:
    def write(self, tmp_path, name, document):
        import json

        path = tmp_path / name
        path.write_text(json.dumps(document))
        return path

    def test_expect_fail_inverts_the_verdict(self, tmp_path, capsys):
        baseline = self.write(tmp_path, "base.json", leakage_doc())
        breach = self.write(
            tmp_path, "cand.json", leakage_doc(distance=0.5)
        )
        assert leakage.main(
            ["--baseline", str(baseline), "--candidate", str(breach),
             "--expect-fail"]
        ) == 0
        assert leakage.main(
            ["--baseline", str(baseline), "--candidate", str(baseline),
             "--expect-fail"]
        ) == 1

    def test_malformed_artifact_exits_2_with_message(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{")
        good = self.write(tmp_path, "good.json", leakage_doc())
        assert leakage.main(
            ["--baseline", str(bad), "--candidate", str(good)]
        ) == 2
        assert "unreadable" in capsys.readouterr().err
