"""Tests for view flattening and role detection."""

from dataclasses import dataclass

import pytest

from repro.analysis.views import (
    contains_material,
    iter_byte_material,
    view_material,
)
from repro.mediation.network import Network


class TestByteMaterial:
    def test_bytes_pass_through(self):
        assert list(iter_byte_material(b"raw")) == [b"raw"]

    def test_strings_utf8(self):
        assert list(iter_byte_material("héllo")) == ["héllo".encode()]

    def test_ints_big_endian(self):
        assert list(iter_byte_material(258)) == [b"\x01\x02"]

    def test_none_and_bool_skipped(self):
        assert list(iter_byte_material(None)) == []
        assert list(iter_byte_material(True)) == []

    def test_containers_flattened(self):
        material = list(iter_byte_material({"k": [b"a", (b"b",)]}))
        assert b"a" in material and b"b" in material and b"k" in material

    def test_dataclasses_flattened(self):
        @dataclass
        class Box:
            inner: bytes

        assert b"secret" in list(iter_byte_material(Box(b"secret")))

    def test_to_bytes_objects(self):
        class Blob:
            def to_bytes(self):
                return b"blob-bytes"

        assert list(iter_byte_material(Blob())) == [b"blob-bytes"]


class TestViewMaterial:
    @pytest.fixture
    def network(self):
        net = Network()
        net.register("a")
        net.register("b")
        return net

    def test_received_only_by_default(self, network):
        network.send("a", "b", "kind", b"sent-by-a")
        network.send("b", "a", "kind", b"sent-by-b")
        material = view_material(network.view("a"))
        assert b"sent-by-b" in material
        assert b"sent-by-a" not in material

    def test_all_messages_when_requested(self, network):
        network.send("a", "b", "kind", b"sent-by-a")
        material = view_material(network.view("a"), received_only=False)
        assert b"sent-by-a" in material

    def test_separators_prevent_cross_fragment_matches(self, network):
        network.send("a", "b", "kind", [b"AB", b"CD"])
        assert not contains_material(network.view("b"), b"ABCD")
        assert contains_material(network.view("b"), b"AB", min_length=2)

    def test_short_needle_rejected(self, network):
        network.send("a", "b", "kind", b"xxxx")
        with pytest.raises(ValueError):
            contains_material(network.view("b"), b"x")
