"""Property tests for the differential auditor's building blocks.

The hardened mode's security argument only goes through if the
adjacent-workload perturbation really preserves the invariants the
padding bounds are computed from.  Hypothesis sweeps workload specs and
synthetic traces to pin down:

* ``adjacent_workload`` moves exactly one join value and preserves
  every adjacency invariant (cardinalities, active-domain sizes, the
  multiplicity multiset, schemas);
* the distance metrics are symmetric in (base, twin) and identically
  zero on identical traces.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.audit import adjacent_workload, trace_distances
from repro.relational.datagen import WorkloadSpec, generate
from repro.telemetry.observables import ObservableTrace, ObservedMessage

specs = st.builds(
    WorkloadSpec,
    domain_1=st.integers(min_value=2, max_value=8),
    domain_2=st.integers(min_value=2, max_value=8),
    overlap=st.integers(min_value=1, max_value=2),
    rows_per_value_1=st.integers(min_value=1, max_value=3),
    rows_per_value_2=st.integers(min_value=1, max_value=2),
    skew=st.sampled_from([0.0, 1.0]),
    seed=st.integers(min_value=0, max_value=2**16),
)

events = st.lists(
    st.tuples(
        st.sampled_from(["a->b", "b->a", "a->c"]),
        st.sampled_from(["query", "result", "table"]),
        st.sampled_from([32, 64, 128, 256]),
    ),
    max_size=12,
)


def multiplicities(relation, attribute):
    position = [a.name for a in relation.schema.attributes].index(attribute)
    return Counter(
        Counter(row[position] for row in relation.rows).values()
    )


def make_trace(event_list):
    trace = ObservableTrace("mediator", "das", "Network")
    for position, (link, kind, size) in enumerate(event_list):
        trace.messages.append(
            ObservedMessage(position, link, kind, "received", size)
        )
    return trace


class TestAdjacencyInvariants:
    @given(spec=specs)
    @settings(max_examples=40, deadline=None)
    def test_perturbation_preserves_every_invariant(self, spec):
        base = generate(spec)
        adjacent, perturbation = adjacent_workload(base)
        join = spec.join_attribute

        # Exactly one value moved, out of the intersection, R2 untouched.
        victim = base.shared_values[0]
        assert adjacent.relation_2.rows == base.relation_2.rows
        assert victim not in adjacent.relation_1.active_domain(join)
        assert set(base.shared_values) - set(adjacent.shared_values) == {victim}

        # The invariants the padding bounds are computed from.
        assert len(adjacent.relation_1.rows) == len(base.relation_1.rows)
        assert len(adjacent.relation_1.active_domain(join)) == len(
            base.relation_1.active_domain(join)
        )
        assert multiplicities(adjacent.relation_1, join) == multiplicities(
            base.relation_1, join
        )
        assert adjacent.relation_1.schema == base.relation_1.schema

        # And the quantity that must move: the intersection shrinks.
        base_shared = set(base.relation_1.active_domain(join)) & set(
            base.relation_2.active_domain(join)
        )
        adj_shared = set(adjacent.relation_1.active_domain(join)) & set(
            adjacent.relation_2.active_domain(join)
        )
        assert len(adj_shared) == len(base_shared) - 1
        assert perturbation["rows_rewritten"] >= 1

    @given(spec=specs)
    @settings(max_examples=20, deadline=None)
    def test_perturbation_is_deterministic(self, spec):
        base = generate(spec)
        first, _ = adjacent_workload(base)
        second, _ = adjacent_workload(generate(spec))
        assert first.relation_1.rows == second.relation_1.rows


class TestDistanceProperties:
    @given(a=events, b=events)
    @settings(max_examples=60, deadline=None)
    def test_distances_are_symmetric(self, a, b):
        forward = trace_distances(make_trace(a), make_trace(b))
        backward = trace_distances(make_trace(b), make_trace(a))
        assert forward == backward

    @given(a=events)
    @settings(max_examples=40, deadline=None)
    def test_identical_traces_have_zero_distance(self, a):
        distances = trace_distances(make_trace(a), make_trace(a))
        assert all(value == 0.0 for value in distances.values())

    @given(a=events, b=events)
    @settings(max_examples=60, deadline=None)
    def test_distances_are_bounded(self, a, b):
        distances = trace_distances(make_trace(a), make_trace(b))
        for metric in ("messages_tv", "kinds_tv", "bucket_frequency_tv"):
            assert 0.0 <= distances[metric] <= 1.0
        assert distances["sequence_divergence"] >= 0.0
        assert distances["max_count_delta"] >= 0.0
