"""Tests for the partition-inference ablation analysis (A1)."""

import pytest

from repro import DASConfig, run_join_query
from repro.analysis.inference import (
    das_efficiency,
    partition_exposure,
)
from repro.errors import ProtocolError
from repro.relational.partition import build_index_table, equi_depth, singleton
from repro.relational.relation import Relation
from repro.relational.schema import schema

QUERY = "select * from R1 natural join R2"

S = schema("R", k="int", p="string")
R = Relation(S, [(i, f"p{i}") for i in range(12)] + [(0, "dup")])


class TestExposure:
    def test_singleton_exposure_is_one(self):
        table = build_index_table("R.k", singleton(R.active_domain("k")), salt=b"s")
        report = partition_exposure(table, R)
        assert report.tuple_exposure == pytest.approx(1.0)
        assert report.value_exposure == pytest.approx(1.0)

    def test_single_bucket_exposure_is_inverse_domain(self):
        table = build_index_table(
            "R.k", equi_depth(R.active_domain("k"), 1), salt=b"s"
        )
        report = partition_exposure(table, R)
        assert report.tuple_exposure == pytest.approx(1 / 12)
        assert report.value_exposure == pytest.approx(1 / 12)

    def test_exposure_monotone_in_buckets(self):
        exposures = []
        for buckets in (1, 2, 4, 12):
            table = build_index_table(
                "R.k", equi_depth(R.active_domain("k"), buckets), salt=b"s"
            )
            exposures.append(partition_exposure(table, R).value_exposure)
        assert exposures == sorted(exposures)

    def test_report_metadata(self):
        table = build_index_table(
            "R.k", equi_depth(R.active_domain("k"), 3), salt=b"s"
        )
        report = partition_exposure(table, R)
        assert report.partitions == 3
        assert report.covered_values == 12


class TestDASEfficiency:
    def test_extraction(self, ca, client, workload):
        from repro import Federation
        from repro.mediation.access_control import allow_all

        federation = Federation(ca=ca)
        federation.add_source("S1", [(workload.relation_1, allow_all())])
        federation.add_source("S2", [(workload.relation_2, allow_all())])
        federation.attach_client(client)
        result = run_join_query(
            federation, QUERY, protocol="das", config=DASConfig(buckets=2)
        )
        report = das_efficiency(result)
        assert report.buckets_configured == 2
        assert report.server_result_size == (
            report.exact_join_size + report.false_positives
        )
        assert 0.0 <= report.false_positive_rate <= 1.0

    def test_requires_das_run(self, ca, client, workload):
        from repro import Federation
        from repro.mediation.access_control import allow_all

        federation = Federation(ca=ca)
        federation.add_source("S1", [(workload.relation_1, allow_all())])
        federation.add_source("S2", [(workload.relation_2, allow_all())])
        federation.attach_client(client)
        result = run_join_query(federation, QUERY, protocol="commutative")
        with pytest.raises(ProtocolError):
            das_efficiency(result)
