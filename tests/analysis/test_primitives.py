"""Tests for the Table-2 primitive audit (E2)."""

import pytest

from repro import run_join_query
from repro.analysis.primitives import (
    baseline_operations,
    primitive_profile,
    table2,
)

QUERY = "select * from R1 natural join R2"


@pytest.fixture(scope="module")
def results(ca, client, workload):
    from repro import Federation
    from repro.mediation.access_control import allow_all

    def factory():
        federation = Federation(ca=ca)
        federation.add_source("S1", [(workload.relation_1, allow_all())])
        federation.add_source("S2", [(workload.relation_2, allow_all())])
        federation.attach_client(client)
        return federation

    return {
        protocol: run_join_query(factory(), QUERY, protocol=protocol)
        for protocol in ("das", "commutative", "private-matching")
    }


class TestTable2Rows:
    """Each row must match the paper's Table 2 exactly."""

    def test_das_uses_hash_only(self, results):
        profile = primitive_profile(results["das"])
        assert profile.category_names() == ("hashfunction",)

    def test_commutative_uses_hash_and_commutative(self, results):
        profile = primitive_profile(results["commutative"])
        assert profile.category_names() == (
            "commutative encryption",
            "hashfunction",
        )

    def test_pm_uses_homomorphic_and_randoms(self, results):
        profile = primitive_profile(results["private-matching"])
        assert profile.category_names() == (
            "homomorphic encryption",
            "random numbers",
        )


class TestOperationCounts:
    def test_commutative_encryption_count(self, results, workload):
        # Each source encrypts its own domain once and the opposite
        # domain once: 2 * (n + m) applications in total.
        profile = primitive_profile(results["commutative"])
        n = len(workload.relation_1.active_domain("k"))
        m = len(workload.relation_2.active_domain("k"))
        assert profile.operations["commutative.encrypt"] == 2 * (n + m)

    def test_ideal_hash_count(self, results, workload):
        profile = primitive_profile(results["commutative"])
        n = len(workload.relation_1.active_domain("k"))
        m = len(workload.relation_2.active_domain("k"))
        assert profile.operations["hash.ideal"] == n + m

    def test_pm_mask_count(self, results, workload):
        # One fresh random mask per own active value per source.
        profile = primitive_profile(results["private-matching"])
        n = len(workload.relation_1.active_domain("k"))
        m = len(workload.relation_2.active_domain("k"))
        assert profile.operations["random.pm_mask"] == n + m

    def test_pm_coefficient_encryptions(self, results, workload):
        profile = primitive_profile(results["private-matching"])
        n = len(workload.relation_1.active_domain("k"))
        m = len(workload.relation_2.active_domain("k"))
        # n+1 coefficients of P1 plus m+1 of P2.
        assert profile.operations["paillier.encrypt"] == n + m + 2

    def test_das_collision_free_hash_per_partition(self, results):
        profile = primitive_profile(results["das"])
        assert profile.operations.get("hash.collision_free", 0) >= 2


class TestBaselineExclusion:
    def test_hybrid_machinery_not_in_categories(self, results):
        # All protocols use hybrid encryption heavily, yet Table 2 lists
        # it as baseline - the audit must exclude it.
        for result in results.values():
            baseline = baseline_operations(result.primitive_counter)
            assert any(op.startswith("rsa.") for op in baseline) or any(
                op.startswith("symmetric.") for op in baseline
            )

    def test_das_baseline_has_hybrid_encrypts(self, results, workload):
        baseline = baseline_operations(results["das"].primitive_counter)
        # One hybrid encryption per tuple plus one per index table.
        expected = len(workload.relation_1) + len(workload.relation_2) + 2
        assert baseline["hybrid.encrypt"] == expected


class TestRendering:
    def test_table2_renders(self, results):
        text = table2([primitive_profile(r) for r in results.values()])
        assert "hashfunction" in text
        assert "commutative encryption" in text
        assert "homomorphic encryption and random numbers" in text
