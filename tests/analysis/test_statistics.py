"""Tests for the statistical indistinguishability checks."""

import secrets

import pytest

from repro import run_join_query
from repro.analysis.statistics import (
    byte_uniformity,
    ciphertext_material,
    commutative_tag_spread,
    mediator_ciphertext_uniformity,
)
from repro.analysis.views import mediator_party
from repro.errors import ProtocolError

QUERY = "select * from R1 natural join R2"


@pytest.fixture(scope="module")
def factory(ca, client, workload):
    from repro import Federation
    from repro.mediation.access_control import allow_all

    def make():
        federation = Federation(ca=ca)
        federation.add_source("S1", [(workload.relation_1, allow_all())])
        federation.add_source("S2", [(workload.relation_2, allow_all())])
        federation.attach_client(client)
        return federation

    return make


class TestByteUniformity:
    def test_random_bytes_pass(self):
        report = byte_uniformity(secrets.token_bytes(1 << 16))
        assert report.looks_uniform
        assert report.sample_bytes == 1 << 16

    def test_structured_bytes_fail(self):
        report = byte_uniformity(b"AAAA" * 1024)
        assert not report.looks_uniform

    def test_english_text_fails(self):
        text = (b"the quick brown fox jumps over the lazy dog " * 100)
        assert not byte_uniformity(text).looks_uniform

    def test_small_sample_rejected(self):
        with pytest.raises(ProtocolError):
            byte_uniformity(b"tiny")


class TestMediatorMaterial:
    @pytest.mark.parametrize(
        "protocol", ["das", "commutative", "private-matching"]
    )
    def test_ciphertext_material_looks_uniform(self, factory, protocol):
        result = run_join_query(factory(), QUERY, protocol=protocol)
        report = mediator_ciphertext_uniformity(result)
        assert report.looks_uniform, (
            protocol, report.p_value, report.sample_bytes,
        )

    def test_material_extraction_nonempty(self, factory):
        result = run_join_query(factory(), QUERY, protocol="das")
        view = result.network.view(mediator_party(result.network))
        assert len(ciphertext_material(view)) > 1024


class TestTagSpread:
    def test_commutative_tags(self, factory, workload):
        result = run_join_query(factory(), QUERY, protocol="commutative")
        report = commutative_tag_spread(result)
        n = len(workload.relation_1.active_domain("k"))
        m = len(workload.relation_2.active_domain("k"))
        assert report.tags == n + m
        assert report.collision_free
        assert report.well_spread

    def test_requires_commutative_run(self, factory):
        result = run_join_query(factory(), QUERY, protocol="das")
        with pytest.raises(ProtocolError):
            commutative_tag_spread(result)
