"""Tests for the Section-6 comparison measurements (E5-E7)."""

import pytest

from repro import CommutativeConfig, DASConfig, PMConfig
from repro.analysis.comparison import compare, measure, render

QUERY = "select * from R1 natural join R2"


@pytest.fixture(scope="module")
def rows(ca, client, workload):
    from repro import Federation
    from repro.mediation.access_control import allow_all

    def factory():
        federation = Federation(ca=ca)
        federation.add_source("S1", [(workload.relation_1, allow_all())])
        federation.add_source("S2", [(workload.relation_2, allow_all())])
        federation.attach_client(client)
        return federation

    return compare(
        factory,
        QUERY,
        [
            ("das", DASConfig()),
            ("commutative", CommutativeConfig()),
            ("private-matching", PMConfig()),
        ],
    )


class TestInteractionClaims:
    """Section 6's interaction-count statements (E5)."""

    def test_das_client_interacts_twice(self, rows):
        assert rows[0].client_interactions == 2

    def test_others_client_interacts_once(self, rows):
        assert rows[1].client_interactions == 1
        assert rows[2].client_interactions == 1

    def test_das_sources_send_once(self, rows):
        assert rows[0].max_source_interactions == 1

    def test_other_sources_interact_twice(self, rows):
        assert rows[1].max_source_interactions == 2
        assert rows[2].max_source_interactions == 2


class TestClientDataClaims:
    """Section 6's client-received-data statements (E7)."""

    def test_das_client_receives_superset(self, rows, workload):
        das = rows[0]
        assert das.client_received_units >= das.exact_join_size

    def test_commutative_client_receives_exact_sets(self, rows, workload):
        commutative = rows[1]
        dom_1 = set(workload.relation_1.active_domain("k"))
        dom_2 = set(workload.relation_2.active_domain("k"))
        assert commutative.client_received_units == len(dom_1 & dom_2)

    def test_pm_client_receives_everything(self, rows, workload):
        pm = rows[2]
        n = len(workload.relation_1.active_domain("k"))
        m = len(workload.relation_2.active_domain("k"))
        assert pm.client_received_units == n + m

    def test_commutative_minimal_among_protocols(self, rows):
        commutative = rows[1]
        assert commutative.client_received_units <= rows[0].client_received_units
        assert commutative.client_received_units <= rows[2].client_received_units


class TestCostClaims:
    """Section 6's overall-efficiency ranking (E6)."""

    def test_pm_is_most_expensive_in_crypto_ops(self, rows):
        pm = rows[2]
        assert pm.crypto_operations > rows[0].crypto_operations
        assert pm.crypto_operations > rows[1].crypto_operations

    def test_pm_slowest_wall_clock(self, rows):
        # "this is quite expensive" - polynomial evaluation dominates.
        assert rows[2].total_seconds > rows[1].total_seconds

    def test_measurements_consistent(self, rows):
        for row in rows:
            assert row.total_bytes > 0
            assert row.total_messages >= 8
            assert row.exact_join_size == rows[0].exact_join_size


class TestRendering:
    def test_render_table(self, rows):
        text = render(rows)
        assert "protocol" in text
        assert "das[client]" in text
        assert len(text.splitlines()) == 2 + len(rows)

    def test_measure_idempotent(self, rows, ca, client, workload):
        from repro import Federation, run_join_query
        from repro.mediation.access_control import allow_all

        federation = Federation(ca=ca)
        federation.add_source("S1", [(workload.relation_1, allow_all())])
        federation.add_source("S2", [(workload.relation_2, allow_all())])
        federation.attach_client(client)
        result = run_join_query(federation, QUERY, protocol="commutative")
        assert measure(result).protocol == measure(result).protocol
