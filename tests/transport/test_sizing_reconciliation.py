"""Reconcile structural size estimates against actual wire encodings.

The in-process bus accounts bytes with :func:`~repro.mediation.sizing
.estimate_size` plus a flat ``ENVELOPE_BYTES`` constant; the TCP
transport counts actual frame bytes.  These tests pin the drift between
the two accountings for every message kind the three protocols produce:

* the structural estimate is a **lower bound** on the codec encoding
  (the codec only adds tags and length prefixes, it never compresses);
* the encoding exceeds the estimate by at most **40% plus 256 bytes**
  (the additive term absorbs small control messages whose fixed framing
  dominates the payload);
* the real per-message envelope overhead (frame header + sequence +
  routing strings) stays within **16 bytes** of ``ENVELOPE_BYTES``.

If a codec or sizing change moves outside these bounds, either fix the
regression or re-derive the documented tolerance — consciously.
"""

import pytest

from repro import Federation, run_join_query
from repro.mediation.access_control import allow_all
from repro.mediation.network import ENVELOPE_BYTES
from repro.mediation.sizing import estimate_size
from repro.transport import codec

QUERY = "select * from R1 natural join R2"
PROTOCOLS = ["das", "commutative", "private-matching"]

#: Documented drift bound: estimate <= actual <= RATIO*estimate + SLACK.
RATIO = 1.4
SLACK = 256
#: ENVELOPE_BYTES must sit within this distance of real frame overhead.
ENVELOPE_TOLERANCE = 16


@pytest.fixture(scope="module")
def transcripts(ca, client, workload):
    """One bus transcript per protocol (messages carry live bodies)."""
    runs = {}
    for protocol in PROTOCOLS:
        federation = Federation(ca=ca)
        federation.add_source("S1", [(workload.relation_1, allow_all())])
        federation.add_source("S2", [(workload.relation_2, allow_all())])
        federation.attach_client(client)
        run_join_query(federation, QUERY, protocol=protocol)
        runs[protocol] = list(federation.network.transcript)
    return runs


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_estimate_is_lower_bound_within_tolerance(transcripts, protocol):
    for message in transcripts[protocol]:
        estimate = estimate_size(message.body)
        actual = codec.encoded_size(message.body)
        assert estimate <= actual, (
            f"{message.kind}: structural estimate {estimate} exceeds the "
            f"actual encoding {actual} — estimate_size over-counts"
        )
        bound = RATIO * estimate + SLACK
        assert actual <= bound, (
            f"{message.kind}: actual encoding {actual} exceeds documented "
            f"tolerance {bound:.0f} over estimate {estimate}"
        )


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_envelope_constant_matches_frame_overhead(transcripts, protocol):
    for message in transcripts[protocol]:
        payload = codec.encode_envelope(
            message.sequence,
            message.sender,
            message.receiver,
            message.kind,
            message.body,
        )
        frame_bytes = codec.FRAME_HEADER_BYTES + len(payload)
        overhead = frame_bytes - codec.encoded_size(message.body)
        assert abs(overhead - ENVELOPE_BYTES) <= ENVELOPE_TOLERANCE, (
            f"{message.kind}: real envelope overhead {overhead} drifted "
            f"from ENVELOPE_BYTES={ENVELOPE_BYTES}"
        )


def test_every_protocol_kind_is_covered(transcripts):
    """The drift bounds above are only meaningful if they actually saw
    every message kind the protocols emit."""
    kinds = {m.kind for run in transcripts.values() for m in run}
    assert {
        "global_query",
        "partial_query",
        "das_encrypted_index_tables",
        "das_server_query",
        "das_server_result",
        "das_encrypted_partial_result",
        "commutative_setup",
        "commutative_exchange",
        "commutative_double",
        "commutative_m_set",
        "commutative_result",
        "pm_homomorphic_key",
        "pm_encrypted_coefficients",
        "pm_evaluations",
        "pm_side_table",
        "pm_side_tables",
    } <= kinds
