"""Unit tests for the TCP transport runtime: endpoints, faults, retries."""

import socket
import threading
import time

import pytest

from repro.errors import NetworkError
from repro.transport import RetryPolicy, TcpTransport, codec


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    data = b""
    while len(data) < count:
        chunk = sock.recv(count - len(data))
        if not chunk:
            raise ConnectionError("peer closed early")
        data += chunk
    return data

#: Fast-failing policy so fault tests stay quick.
FAST = RetryPolicy(
    attempts=3, base_delay=0.01, max_delay=0.05, connect_timeout=0.5,
    io_timeout=0.4,
)


@pytest.fixture
def transport():
    carrier = TcpTransport(retry=FAST)
    yield carrier
    carrier.close()


def unused_port() -> int:
    """A port that was just free — nothing listens on it."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class MuteServer:
    """Accepts connections and reads forever without ever answering."""

    def __init__(self) -> None:
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen()
        self.port = self._listener.getsockname()[1]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._accept, daemon=True)
        self._thread.start()

    def _accept(self) -> None:
        self._listener.settimeout(0.1)
        connections = []
        while not self._stop.is_set():
            try:
                connection, _ = self._listener.accept()
                connections.append(connection)
            except OSError:
                continue
        for connection in connections:
            connection.close()

    def close(self) -> None:
        self._stop.set()
        self._thread.join()
        self._listener.close()


class TestDelivery:
    def test_send_records_both_views_and_wire_bytes(self, transport):
        transport.register("mediator")
        transport.register("S1")
        message = transport.send("S1", "mediator", "kind", {"n": 1 << 64})
        assert message.body == {"n": 1 << 64}
        assert transport.view("S1").sent == [message]
        assert transport.view("mediator").received == [message]
        [record] = transport.remote_view("mediator")
        assert record.wire_bytes == message.size_bytes
        assert (record.sender, record.kind) == ("S1", "kind")

    def test_body_is_decoded_roundtrip_not_the_live_object(self, transport):
        transport.register("a")
        transport.register("b")
        body = {"shared": [1, 2, 3]}
        message = transport.send("a", "b", "kind", body)
        assert message.body == body
        assert message.body is not body  # went through the codec

    def test_unknown_parties_rejected_without_io(self, transport):
        transport.register("a")
        with pytest.raises(NetworkError, match="unknown receiver"):
            transport.send("a", "ghost", "kind", None)
        with pytest.raises(NetworkError, match="unknown sender"):
            transport.send("ghost", "a", "kind", None)

    def test_sequential_sends_share_one_connection(self, transport):
        transport.register("a")
        transport.register("b")
        for index in range(5):
            transport.send("a", "b", f"kind-{index}", index)
        records = transport.remote_view("b")
        assert [r.sequence for r in records] == [1, 2, 3, 4, 5]

    def test_handshake_rejects_wrong_party(self):
        first = TcpTransport(retry=FAST)
        try:
            first.register("mediator")
            address = first.endpoint_of("mediator")
            second = TcpTransport(endpoints={"S1": address}, retry=FAST)
            try:
                with pytest.raises(NetworkError, match="identifies as"):
                    second.register("S1")
            finally:
                second.close()
        finally:
            first.close()

    def test_closed_transport_refuses_work(self):
        carrier = TcpTransport(retry=FAST)
        carrier.register("a")
        carrier.close()
        with pytest.raises(NetworkError, match="closed"):
            carrier.register("b")
        carrier.close()  # idempotent


class TestFaults:
    def test_connection_refused_exhausts_retries(self):
        port = unused_port()
        carrier = TcpTransport(endpoints={"S1": ("127.0.0.1", port)}, retry=FAST)
        try:
            started = time.perf_counter()
            with pytest.raises(NetworkError, match="after 3 attempts"):
                carrier.register("S1")
            elapsed = time.perf_counter() - started
            # Two backoff sleeps happened: 0.01 + 0.02 seconds.
            assert elapsed >= 0.03
        finally:
            carrier.close()

    def test_silent_peer_times_out(self):
        mute = MuteServer()
        carrier = TcpTransport(
            endpoints={"S1": ("127.0.0.1", mute.port)}, retry=FAST
        )
        try:
            started = time.perf_counter()
            with pytest.raises(NetworkError, match="timed out"):
                carrier.register("S1")
            assert time.perf_counter() - started >= FAST.io_timeout
        finally:
            carrier.close()
            mute.close()

    def test_peer_dying_mid_protocol_raises_not_hangs(self, transport):
        transport.register("a")
        transport.register("b")
        transport.send("a", "b", "first", 1)
        server_b = transport.local_server("b")
        # Simulate the party dying: endpoint gone, connections dropped.
        transport._run(server_b.stop())
        with pytest.raises(NetworkError):
            transport.send("a", "b", "second", 2)

    def test_misdelivered_message_reported_by_endpoint(self, transport):
        # Talk to the raw endpoint (past the handshake) and address a
        # message to the wrong party: the endpoint must answer ERROR.
        transport.register("mediator")
        host, port = transport.endpoint_of("mediator")
        payload = codec.encode_envelope(1, "x", "NOT-mediator", "kind", None)
        with socket.create_connection((host, port)) as raw:
            raw.sendall(codec.build_frame(codec.DATA, payload))
            header = _recv_exactly(raw, codec.FRAME_HEADER_BYTES)
            frame_type, length = codec.parse_frame_header(header)
            body = codec.decode_value(_recv_exactly(raw, length))
        assert frame_type == codec.ERROR
        assert "misdelivered" in body["error"]
        assert transport.remote_view("mediator") == []
