"""Backpressure tests: session admission, BUSY frames, ServerBusy.

An endpoint at ``max_sessions`` refuses a *new* session's traffic with
a BUSY frame; the client side backs off under its retry policy and
surfaces :class:`~repro.errors.ServerBusy` once the budget is spent.
These tests pin the refusal rules: live sessions and legacy
(session-less) traffic are never refused, BUSY leaves the connection
healthy, and closing a session frees its slot.
"""

import pytest

from repro.errors import NetworkError, ServerBusy
from repro.session import session_scope
from repro.transport import RetryPolicy, TcpTransport
from repro.transport.server import ENDPOINT_BUSY_METRIC

FAST = RetryPolicy(
    attempts=2, base_delay=0.01, max_delay=0.02, connect_timeout=1.0,
    io_timeout=1.0,
)


@pytest.fixture
def crowded_transport():
    """A transport whose locally hosted endpoints allow ONE session."""
    transport = TcpTransport(retry=FAST, server_options={"max_sessions": 1})
    transport.register("client")
    transport.register("S1")
    yield transport
    transport.close()


class TestAdmission:
    def test_second_session_is_refused_with_server_busy(self, crowded_transport):
        with session_scope("first"):
            crowded_transport.send("client", "S1", "step", {"n": 1})
        with session_scope("second"):
            with pytest.raises(ServerBusy) as excinfo:
                crowded_transport.send("client", "S1", "step", {"n": 2})
        message = str(excinfo.value)
        assert "1/1 sessions" in message
        assert "127.0.0.1" in message  # the _where() endpoint contract

    def test_server_busy_is_a_network_error(self):
        assert issubclass(ServerBusy, NetworkError)

    def test_live_session_is_never_refused(self, crowded_transport):
        with session_scope("first"):
            for n in range(3):
                crowded_transport.send("client", "S1", "step", {"n": n})
        server = crowded_transport.local_server("S1")
        assert len(server.session_records("first")) == 3

    def test_legacy_traffic_is_exempt_from_admission(self, crowded_transport):
        with session_scope("first"):
            crowded_transport.send("client", "S1", "step", {"n": 1})
        # No session scope: pre-session peers share the legacy slot and
        # must keep working even at capacity.
        crowded_transport.send("client", "S1", "legacy-step", {"n": 2})
        server = crowded_transport.local_server("S1")
        assert len(server.session_records("legacy")) == 1

    def test_busy_leaves_the_connection_healthy(self, crowded_transport):
        with session_scope("first"):
            crowded_transport.send("client", "S1", "step", {"n": 1})
        with session_scope("second"):
            with pytest.raises(ServerBusy):
                crowded_transport.send("client", "S1", "step", {"n": 2})
        # The refused connection went back to the pool, not the floor:
        # the next (admitted) send still flows.
        with session_scope("first"):
            message = crowded_transport.send("client", "S1", "step", {"n": 3})
        assert message.kind == "step"

    def test_closing_a_session_frees_its_slot(self, crowded_transport):
        crowded_transport.open_session("first", parties=["S1"])
        with pytest.raises(ServerBusy):
            crowded_transport.open_session("second", parties=["S1"])
        crowded_transport.close_session("first", parties=["S1"])
        crowded_transport.open_session("second", parties=["S1"])
        with session_scope("second"):
            crowded_transport.send("client", "S1", "step", {"n": 1})
        server = crowded_transport.local_server("S1")
        assert len(server.session_records("second")) == 1

    def test_refusals_are_counted_at_the_endpoint(self, crowded_transport):
        with session_scope("first"):
            crowded_transport.send("client", "S1", "step", {"n": 1})
        with session_scope("second"):
            with pytest.raises(ServerBusy):
                crowded_transport.send("client", "S1", "step", {"n": 2})
        server = crowded_transport.local_server("S1")
        busy = server.registry.counter(
            ENDPOINT_BUSY_METRIC, {"party": "S1"}
        ).value
        # One refusal per delivery attempt under the retry policy.
        assert busy == FAST.attempts


class TestExplicitSessionFrames:
    def test_open_is_idempotent(self, crowded_transport):
        crowded_transport.open_session("first")
        crowded_transport.open_session("first")
        assert "first" in crowded_transport.local_server("S1").sessions

    def test_close_is_idempotent_and_tolerates_unknown(self, crowded_transport):
        crowded_transport.open_session("first")
        crowded_transport.close_session("first")
        crowded_transport.close_session("first")
        crowded_transport.close_session("never-opened")

    def test_transport_close_farewells_used_sessions(self):
        transport = TcpTransport(retry=FAST, server_options={"max_sessions": 4})
        transport.register("client")
        transport.register("S1")
        server = transport.local_server("S1")
        with session_scope("ephemeral"):
            transport.send("client", "S1", "step", {"n": 1})
        assert "ephemeral" in server.sessions
        transport.close()
        assert "ephemeral" not in server.sessions
