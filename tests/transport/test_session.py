"""Tests for the session registry and the session context.

The registry is the isolation backbone of concurrent mediation
(docs/transport.md): endpoints, the mediator, and datasources all key
per-session state here.  These tests pin the lifecycle contract —
open/touch/close, TTL sweep, LRU eviction, eviction callbacks — and
the contextvar propagation that carries a session id from the runner
down to every transport send.
"""

import threading

import pytest

from repro.session import (
    DEFAULT_SESSION_CAPACITY,
    DEFAULT_SESSION_TTL,
    LEGACY_SESSION,
    Session,
    SessionRegistry,
    current_session_id,
    new_session_id,
    session_scope,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestLifecycle:
    def test_open_creates_and_is_idempotent(self):
        registry = SessionRegistry()
        session = registry.open("alpha")
        assert session.id == "alpha"
        assert not session.closed
        assert registry.open("alpha") is session
        assert len(registry) == 1

    def test_open_without_id_mints_one(self):
        registry = SessionRegistry()
        session = registry.open()
        assert session.id
        assert session.id in registry

    def test_get_creates_by_default_but_not_with_create_false(self):
        registry = SessionRegistry()
        assert registry.get("ghost", create=False) is None
        assert registry.get("ghost").id == "ghost"

    def test_peek_neither_creates_nor_touches(self):
        clock = FakeClock()
        registry = SessionRegistry(clock=clock)
        assert registry.peek("quiet") is None
        registry.open("quiet")
        registry.open("loud")
        clock.advance(10.0)
        registry.peek("quiet")
        # "quiet" was not LRU-bumped by the peek: it is still the
        # least recently used.
        assert registry.ids()[0] == "quiet"

    def test_close_removes_and_marks_closed(self):
        registry = SessionRegistry()
        session = registry.open("alpha")
        closed = registry.close("alpha")
        assert closed is session
        assert closed.closed
        assert "alpha" not in registry
        assert registry.close("alpha") is None  # idempotent

    def test_state_survives_between_accesses(self):
        registry = SessionRegistry()
        registry.get("alpha").state["records"] = [1, 2]
        assert registry.get("alpha").state["records"] == [1, 2]

    def test_clear_closes_everything(self):
        ended = []
        registry = SessionRegistry(on_evict=lambda s, why: ended.append((s.id, why)))
        registry.open("a")
        registry.open("b")
        registry.clear()
        assert len(registry) == 0
        assert sorted(ended) == [("a", "closed"), ("b", "closed")]


class TestEviction:
    def test_lru_eviction_over_capacity(self):
        ended = []
        registry = SessionRegistry(
            capacity=2, on_evict=lambda s, why: ended.append((s.id, why))
        )
        registry.open("a")
        registry.open("b")
        registry.get("a")  # bump: "b" is now least recently used
        registry.open("c")
        assert ended == [("b", "lru")]
        assert registry.ids() == ["a", "c"]

    def test_ttl_sweep_on_access_and_explicit_expire(self):
        clock = FakeClock()
        ended = []
        registry = SessionRegistry(
            ttl=60.0, clock=clock,
            on_evict=lambda s, why: ended.append((s.id, why)),
        )
        registry.open("stale")
        clock.advance(61.0)
        registry.open("fresh")  # access sweeps the stale session
        assert ended == [("stale", "ttl")]
        clock.advance(61.0)
        expired = registry.expire()
        assert [session.id for session in expired] == ["fresh"]
        assert len(registry) == 0

    def test_stale_id_recreates_instead_of_resurrecting(self):
        clock = FakeClock()
        registry = SessionRegistry(ttl=60.0, clock=clock)
        first = registry.get("alpha")
        first.state["secret"] = 42
        clock.advance(61.0)
        second = registry.get("alpha")
        assert second is not first
        assert second.state == {}

    def test_ttl_none_disables_expiry(self):
        clock = FakeClock()
        registry = SessionRegistry(ttl=None, clock=clock)
        registry.open("forever")
        clock.advance(10 * DEFAULT_SESSION_TTL)
        assert registry.expire() == []
        assert "forever" in registry

    def test_touch_refreshes_ttl(self):
        clock = FakeClock()
        registry = SessionRegistry(ttl=60.0, clock=clock)
        registry.open("alpha")
        for _ in range(5):
            clock.advance(40.0)
            registry.get("alpha")
        assert "alpha" in registry

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SessionRegistry(capacity=0)
        with pytest.raises(ValueError):
            SessionRegistry(ttl=0.0)


class TestLocks:
    def test_default_lock_is_a_threading_lock(self):
        session = SessionRegistry().open("alpha")
        assert session.lock.acquire(blocking=False)
        session.lock.release()

    def test_lock_factory_is_pluggable(self):
        class Sentinel:
            pass

        registry = SessionRegistry(lock_factory=Sentinel)
        assert isinstance(registry.open("alpha").lock, Sentinel)

    def test_concurrent_access_keeps_distinct_sessions(self):
        registry = SessionRegistry(capacity=DEFAULT_SESSION_CAPACITY)
        errors: list[Exception] = []

        def worker(index: int) -> None:
            try:
                for step in range(50):
                    session = registry.get(f"worker-{index}")
                    with session.lock:
                        session.state["steps"] = session.state.get("steps", 0) + 1
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(index,)) for index in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(registry) == 8
        for index in range(8):
            assert registry.peek(f"worker-{index}").state["steps"] == 50


class TestContext:
    def test_no_scope_means_no_session(self):
        assert current_session_id() is None

    def test_scope_installs_and_restores(self):
        with session_scope("outer") as outer:
            assert outer == "outer"
            assert current_session_id() == "outer"
            with session_scope("inner"):
                assert current_session_id() == "inner"
            assert current_session_id() == "outer"
        assert current_session_id() is None

    def test_scope_mints_fresh_id_when_none(self):
        with session_scope() as minted:
            assert current_session_id() == minted
        with session_scope() as second:
            assert second != minted

    def test_scope_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with session_scope("doomed"):
                raise RuntimeError("boom")
        assert current_session_id() is None

    def test_new_session_ids_are_hex_and_unique(self):
        ids = {new_session_id() for _ in range(64)}
        assert len(ids) == 64
        for session_id in ids:
            assert len(session_id) == 16
            int(session_id, 16)  # must be hex
        assert LEGACY_SESSION not in ids


class TestSessionObject:
    def test_idle_seconds_tracks_touch(self):
        session = Session("alpha", threading.Lock(), now=100.0)
        assert session.idle_seconds(130.0) == 30.0
        session.touch(130.0)
        assert session.idle_seconds(130.0) == 0.0
