"""Fuzzing the wire codec: totality on truncated, corrupted, oversized input.

The codec's contract (``repro.errors.CodecError``): any byte string fed
to a decode entry point either decodes cleanly or raises a typed
``CodecError`` subclass.  It never hangs, never trips an ``assert`` or
a ``RecursionError``, and never returns garbage — a successful decode
always has the validated shape the caller relies on.
"""

import asyncio
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CodecError, FrameCodecError, ValueCodecError
from repro.transport import codec

#: Representative payload trees the protocols actually ship.
SAMPLES = [
    {"tags": [b"\x01" * 16, b"\x02" * 16], "count": 2},
    (1, "S1", "mediator", "kind", {"n": 1 << 256}),
    [None, True, -5, 3.25, "unicode ❤", frozenset({("role", "analyst")})],
]

#: A valid envelope encoding used as the corruption target.
ENVELOPE = codec.encode_envelope(
    9, "S1", "mediator", "tagged-set", {"tags": [b"\xaa" * 24]},
    trace=("t" * 32, "s" * 16), request_id="fuzz:9",
)


def decode_is_total(decoder, data: bytes) -> None:
    """Decoding either succeeds or raises a typed CodecError; any other
    exception type (AssertionError, RecursionError, struct.error, ...)
    is a contract violation."""
    try:
        decoder(data)
    except CodecError:
        pass


class TestRandomBytes:
    @given(st.binary(max_size=512))
    @settings(max_examples=200)
    def test_decode_value_is_total(self, data):
        decode_is_total(codec.decode_value, data)

    @given(st.binary(max_size=512))
    @settings(max_examples=200)
    def test_decode_envelope_is_total(self, data):
        decode_is_total(codec.decode_envelope, data)

    @given(st.binary(min_size=0, max_size=16))
    def test_parse_frame_header_is_total(self, header):
        try:
            codec.parse_frame_header(header)
        except FrameCodecError:
            pass


class TestTruncation:
    @pytest.mark.parametrize("value", SAMPLES)
    def test_every_strict_prefix_is_rejected(self, value):
        encoded = codec.encode_value(value)
        for cut in range(len(encoded)):
            with pytest.raises(CodecError):
                codec.decode_value(encoded[:cut])

    def test_truncated_envelope_is_rejected(self):
        for cut in range(len(ENVELOPE)):
            with pytest.raises(CodecError):
                codec.decode_envelope(ENVELOPE[:cut])


class TestCorruption:
    @given(
        position=st.integers(min_value=0, max_value=len(ENVELOPE) - 1),
        mask=st.integers(min_value=1, max_value=255),
    )
    @settings(max_examples=300)
    def test_flipped_byte_never_yields_garbage(self, position, mask):
        """A corrupted envelope either raises a CodecError or still
        decodes to a *validated* envelope shape — never to an
        unchecked value the transport would act on."""
        corrupted = bytearray(ENVELOPE)
        corrupted[position] ^= mask
        try:
            envelope = codec.decode_envelope(bytes(corrupted))
        except CodecError:
            return
        assert isinstance(envelope, tuple) and len(envelope) == 8
        sequence, sender, receiver, kind = envelope[:4]
        assert isinstance(sequence, int)
        assert all(isinstance(part, str) for part in (sender, receiver, kind))

    @given(data=st.binary(min_size=1, max_size=64))
    def test_unknown_extension_names_are_rejected_not_imported(self, data):
        payload = bytes([0x0C, min(len(data), 255)]) + data
        with pytest.raises(CodecError):
            codec.decode_value(payload)


class TestOversized:
    def test_frame_header_claiming_oversized_payload_rejected(self):
        header = codec.MAGIC + bytes((codec.VERSION, codec.DATA)) + struct.pack(
            ">I", 0xFFFFFFFF
        )
        with pytest.raises(FrameCodecError, match="exceeds the size limit"):
            codec.parse_frame_header(header)

    def test_build_frame_refuses_oversized_payload(self, monkeypatch):
        monkeypatch.setattr(codec, "MAX_FRAME_BYTES", 1024)
        with pytest.raises(FrameCodecError, match="exceeds"):
            codec.build_frame(codec.DATA, b"\x00" * 1025)

    def test_container_count_lie_rejected_without_allocation(self):
        """A list header claiming 2**31 elements in a 12-byte buffer
        must fail on the length check, not try to build the list."""
        payload = bytes([0x07]) + struct.pack(">I", 1 << 31) + b"\x00" * 8
        with pytest.raises(ValueCodecError, match="claims"):
            codec.decode_value(payload)

    def test_dict_count_lie_rejected(self):
        payload = bytes([0x09]) + struct.pack(">I", 1 << 30) + b"\x00" * 8
        with pytest.raises(ValueCodecError, match="claims"):
            codec.decode_value(payload)

    def test_over_deep_nesting_rejected_not_recursion_error(self):
        # 100 nested single-element lists: beyond MAX_VALUE_DEPTH.
        depth = codec.MAX_VALUE_DEPTH + 36
        payload = (bytes([0x07]) + struct.pack(">I", 1)) * depth + bytes([0x00])
        with pytest.raises(ValueCodecError, match="deeper than"):
            codec.decode_value(payload)

    def test_huge_int_length_is_bounded_by_truncation_check(self):
        payload = bytes([0x03]) + struct.pack(">I", 1 << 28)
        with pytest.raises(ValueCodecError, match="truncated"):
            codec.decode_value(payload)


class TestStreamFraming:
    """The asyncio reader half of the contract: a peer that goes away
    mid-frame surfaces as a typed error, never a hang."""

    def read_with(self, data: bytes):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            reader.feed_eof()
            return await codec.read_frame(reader, timeout=1.0)

        return asyncio.run(scenario())

    def test_connection_closed_mid_header(self):
        with pytest.raises(FrameCodecError, match="mid-frame"):
            self.read_with(codec.MAGIC + bytes((codec.VERSION,)))

    def test_connection_closed_mid_payload(self):
        frame = codec.build_frame(codec.DATA, b"payload-bytes")
        with pytest.raises(FrameCodecError, match="mid-frame"):
            self.read_with(frame[:-4])

    def test_garbage_header_rejected_before_reading_payload(self):
        with pytest.raises(FrameCodecError, match="magic"):
            self.read_with(b"GARBAGE!" + b"\x00" * 64)

    def test_complete_frame_still_reads(self):
        frame_type, payload = self.read_with(
            codec.build_frame(codec.ACK, codec.encode_value({"sequence": 1}))
        )
        assert frame_type == codec.ACK
        assert codec.decode_value(payload) == {"sequence": 1}
