"""Unit tests for the binary wire codec: values, envelopes, framing."""

import pytest
from hypothesis import given, strategies as st

from repro.core.commutative import TaggedMessage
from repro.core.das import (
    EncryptedRelation,
    EncryptedTuple,
    ServerQuery,
    ServerResult,
)
from repro.crypto import hybrid
from repro.crypto.paillier import PaillierCiphertext, PaillierPublicKey
from repro.errors import EncodingError, NetworkError
from repro.relational.partition import IndexTable, Partition
from repro.relational.relation import Relation
from repro.relational.schema import schema
from repro.transport import codec


def roundtrip(value):
    decoded = codec.decode_value(codec.encode_value(value))
    assert decoded == value
    return decoded


class TestPrimitives:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            1,
            -1,
            255,
            -256,
            1 << 4096,
            -(1 << 4096),
            3.25,
            b"",
            b"\x00\xffpayload",
            "",
            "unicode ❤ text",
        ],
    )
    def test_scalar_roundtrip(self, value):
        decoded = roundtrip(value)
        assert type(decoded) is type(value)

    def test_bool_is_not_int(self):
        # bool is an int subclass; the tags must keep them apart.
        assert codec.decode_value(codec.encode_value(True)) is True
        assert codec.decode_value(codec.encode_value(1)) == 1
        assert codec.decode_value(codec.encode_value(1)) is not True

    @pytest.mark.parametrize(
        "value",
        [
            [],
            [1, "two", b"three", None],
            (1, (2, (3,))),
            {"k": [1, 2], b"raw": {"nested": True}},
            {1, 2, 3},
            frozenset({("role", "analyst"), ("clearance", "high")}),
            {b"token": b"ciphertext", b"other": b""},
        ],
    )
    def test_container_roundtrip(self, value):
        decoded = roundtrip(value)
        assert type(decoded) is type(value)

    @given(
        st.recursive(
            st.one_of(
                st.none(),
                st.booleans(),
                st.integers(),
                st.binary(max_size=64),
                st.text(max_size=64),
            ),
            lambda children: st.one_of(
                st.lists(children, max_size=4),
                st.tuples(children, children),
                st.dictionaries(st.text(max_size=8), children, max_size=4),
            ),
            max_leaves=25,
        )
    )
    def test_random_trees_roundtrip(self, value):
        roundtrip(value)

    def test_unregistered_type_fails_loudly(self):
        class Strange:
            pass

        with pytest.raises(EncodingError, match="no wire encoding"):
            codec.encode_value(Strange())


class TestDomainExtensions:
    def test_hybrid_ciphertext(self, rsa_key):
        ciphertext = hybrid.encrypt([rsa_key.public_key()], b"tuple bytes")
        roundtrip(ciphertext)

    def test_credentials(self, client):
        roundtrip(client.credentials)

    def test_paillier_ciphertext_and_key(self, paillier_key):
        public = paillier_key.public_key
        from repro.crypto import paillier

        roundtrip(public)
        roundtrip([paillier.encrypt(public, m) for m in (0, 1, 12345)])

    def test_paillier_key_interned_once(self, paillier_key):
        from repro.crypto import paillier

        public = paillier_key.public_key
        one = codec.encode_value(paillier.encrypt(public, 1))
        many = codec.encode_value(
            [paillier.encrypt(public, m) for m in range(8)]
        )
        # Eight ciphertexts must cost far less than eight full keys: the
        # modulus travels once, references afterwards.
        key_bytes = (public.n.bit_length() + 7) // 8
        assert len(many) < 8 * len(one) - 6 * key_bytes

    def test_interned_key_is_shared_after_decode(self, paillier_key):
        from repro.crypto import paillier

        public = paillier_key.public_key
        decoded = codec.decode_value(
            codec.encode_value(
                [paillier.encrypt(public, m) for m in range(4)]
            )
        )
        keys = {id(ciphertext.public_key) for ciphertext in decoded}
        assert len(keys) == 1

    def test_index_table_with_salt_and_bounds(self):
        table = IndexTable(
            attribute="R1.k",
            entries=(
                (Partition(frozenset({1, 2}), bounds=(1, 2)), 7),
                (Partition(frozenset({5}), bounds=(3, 9)), 9),
            ),
            salt=b"\x01\x02salt",
        )
        decoded = roundtrip(table)
        assert decoded.salt == table.salt  # to_bytes() would drop this

    def test_das_structures(self, rsa_key):
        keys = [rsa_key.public_key()]
        row = EncryptedTuple(
            etuple=hybrid.encrypt(keys, b"row"),
            index_value=42,
            plain_values=("visible", 7),
        )
        relation = EncryptedRelation(source="S1", relation_name="R1", rows=(row,))
        roundtrip(relation)
        roundtrip(ServerQuery(pairs=((1, 2), (3, 4))))
        roundtrip(ServerResult(pairs=((row, row),)))

    def test_tagged_messages(self, rsa_key):
        keys = [rsa_key.public_key()]
        roundtrip(
            [
                TaggedMessage(tag=12345, payload=hybrid.encrypt(keys, b"x")),
                TaggedMessage(tag=9, payload=b"id-token"),
            ]
        )

    def test_relation(self):
        relation = Relation(
            schema("R1", k="int", a="string"), [(1, "x"), (2, "y")]
        )
        roundtrip(relation)


class TestEnvelopeAndFraming:
    def test_envelope_roundtrip(self):
        payload = codec.encode_envelope(3, "S1", "mediator", "kind", {"a": 1})
        assert codec.decode_envelope(payload) == (
            3, "S1", "mediator", "kind", {"a": 1}, None, None, None,
        )

    def test_envelope_roundtrip_with_request_id(self):
        payload = codec.encode_envelope(
            7, "S1", "mediator", "kind", {"a": 1}, request_id="abcd:7"
        )
        assert codec.decode_envelope(payload) == (
            7, "S1", "mediator", "kind", {"a": 1}, None, "abcd:7", None,
        )

    def test_envelope_roundtrip_with_session_id(self):
        payload = codec.encode_envelope(
            9, "S1", "mediator", "kind", {"a": 1},
            request_id="abcd:9", session_id="feedc0de00000001",
        )
        assert codec.decode_envelope(payload) == (
            9, "S1", "mediator", "kind", {"a": 1},
            None, "abcd:9", "feedc0de00000001",
        )

    def test_session_only_envelope_roundtrip(self):
        payload = codec.encode_envelope(
            2, "S1", "mediator", "kind", None, session_id="cafe"
        )
        assert codec.decode_envelope(payload) == (
            2, "S1", "mediator", "kind", None, None, None, "cafe",
        )

    def test_malformed_session_id_rejected(self):
        bad = codec.encode_value((1, "a", "b", "k", None, None, None, 7))
        with pytest.raises(EncodingError, match="session"):
            codec.decode_envelope(bad)
        empty = codec.encode_value((1, "a", "b", "k", None, None, None, ""))
        with pytest.raises(EncodingError, match="session"):
            codec.decode_envelope(empty)

    def test_malformed_envelope_rejected(self):
        with pytest.raises(EncodingError, match="envelope"):
            codec.decode_envelope(codec.encode_value(("not", "an", "envelope")))

    def test_frame_roundtrip(self):
        frame = codec.build_frame(codec.DATA, b"payload")
        assert len(frame) == codec.FRAME_HEADER_BYTES + len(b"payload")
        frame_type, length = codec.parse_frame_header(
            frame[: codec.FRAME_HEADER_BYTES]
        )
        assert (frame_type, length) == (codec.DATA, len(b"payload"))

    @pytest.mark.parametrize(
        "header",
        [
            b"XX\x01\x01\x00\x00\x00\x00",  # bad magic
            b"SM\x02\x01\x00\x00\x00\x00",  # unsupported version
            b"SM\x01\x63\x00\x00\x00\x00",  # unknown frame type
            b"SM\x01\x01\xff\xff\xff\xff",  # absurd length
            b"short",
        ],
    )
    def test_bad_frame_headers_rejected(self, header):
        with pytest.raises(NetworkError):
            codec.parse_frame_header(header)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(EncodingError, match="trailing"):
            codec.decode_value(codec.encode_value(1) + b"\x00")

    def test_truncated_value_rejected(self):
        encoded = codec.encode_value([1, 2, 3])
        with pytest.raises(EncodingError):
            codec.decode_value(encoded[:-1])

    def test_encoded_size_matches_encoding(self):
        value = {"modulus": 1 << 127, "hash_tag": b"tag"}
        assert codec.encoded_size(value) == len(codec.encode_value(value))
