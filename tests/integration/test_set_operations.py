"""Encrypted set operations via the join protocols (Section 8).

"Inclusion of other relational operations is a demanding field of
further research" — one operation falls out of the existing machinery
for free: **encrypted intersection**.  When both relations share their
entire schema, the natural join *is* the intersection, so any of the
three protocols computes it over ciphertexts unchanged.  These tests pin
that down, together with the value-level intersection the commutative
protocol's artifacts expose.
"""

import pytest

from repro import Federation, run_join_query
from repro.mediation.access_control import allow_all
from repro.relational.algebra import intersection
from repro.relational.relation import Relation
from repro.relational.schema import schema

S_A = schema("A", item="string", category="string", stock="int")
S_B = schema("B", item="string", category="string", stock="int")

A = Relation(
    S_A,
    [
        ("bolt", "fastener", 100),
        ("nut", "fastener", 250),
        ("gear", "drive", 30),
        ("belt", "drive", 12),
    ],
)
B = Relation(
    S_B,
    [
        ("bolt", "fastener", 100),
        ("nut", "fastener", 999),  # same item, different stock: no match
        ("gear", "drive", 30),
        ("cam", "drive", 7),
    ],
)


def build_federation(ca, client):
    federation = Federation(ca=ca)
    federation.add_source("SA", [(A, allow_all())])
    federation.add_source("SB", [(B, allow_all())])
    federation.attach_client(client)
    return federation


class TestEncryptedIntersection:
    EXPECTED = intersection(A, B)

    @pytest.mark.parametrize(
        "protocol", ["commutative", "private-matching"]
    )
    def test_full_schema_join_is_intersection(self, ca, client, protocol):
        result = run_join_query(
            build_federation(ca, client),
            "select * from A natural join B",
            protocol=protocol,
        )
        assert set(result.global_result.rows) == set(self.EXPECTED.rows)
        assert set(result.global_result.rows) == {
            ("bolt", "fastener", 100),
            ("gear", "drive", 30),
        }

    def test_intersection_leaks_only_counts(self, ca, client):
        result = run_join_query(
            build_federation(ca, client),
            "select * from A natural join B",
            protocol="commutative",
        )
        # The mediator matched whole-row keys without seeing any row.
        assert result.artifacts["intersection_size"] == 2
        from repro.analysis.leakage import verify_no_plaintext_leak

        assert verify_no_plaintext_leak(result, [A, B]) == []

    def test_projection_gives_value_intersection(self, ca, client):
        """π_item of the encrypted intersection = set intersection of
        the item columns *restricted to fully matching rows*."""
        result = run_join_query(
            build_federation(ca, client),
            "select item from A natural join B",
            protocol="commutative",
        )
        assert {row[0] for row in result.global_result} == {"bolt", "gear"}


class TestSingleColumnIntersection:
    """Pure value-set intersection: project each side to the key column
    (modelled as single-attribute relations at the sources)."""

    def test_value_sets(self, ca, client):
        keys_a = Relation(schema("KA", item="string"),
                          [(row[0],) for row in A])
        keys_b = Relation(schema("KB", item="string"),
                          [(row[0],) for row in B])
        federation = Federation(ca=ca)
        federation.add_source("SA", [(keys_a, allow_all())])
        federation.add_source("SB", [(keys_b, allow_all())])
        federation.attach_client(client)
        result = run_join_query(
            federation, "select * from KA natural join KB",
            protocol="commutative",
        )
        assert {row[0] for row in result.global_result} == {
            "bolt", "nut", "gear",
        }
