"""Backend divergence gate: python and gmpy2 must be indistinguishable.

Two layers of evidence that the bigint backend cannot leak into
protocol semantics:

1. **Deterministic bit-identity.**  With randomness pinned, every
   primitive (commutative application, Paillier encryption/decryption,
   RSA private operation, engine batches) must produce *the same
   integers* under every available backend.
2. **Protocol-level equivalence.**  Every protocol run under every
   backend must deliver the reference plaintext join with identical
   primitive-counter totals — randomness differs per run, so transcript
   bytes are compared per backend against the deterministic expectation
   (the decrypted global result), not across runs.

On gmpy2-free hosts the matrix degrades to the python backend alone
(the tests still validate the gate plumbing); CI's optional-deps job
runs the full two-backend matrix, plus a TCP cross-backend check that
``cmp``'s the output CSVs of mixed-backend client/server runs.
"""

import pytest

from repro import CommutativeConfig, DASConfig, PMConfig, run_join_query
from repro.crypto import backend as bk
from repro.crypto import commutative, paillier, rsa
from repro.crypto.engine import CryptoEngine
from repro.crypto.groups import commutative_group
from repro.relational.algebra import natural_join

QUERY = "select * from R1 natural join R2"

PROTOCOL_MATRIX = [
    ("das", lambda: DASConfig(buckets=3)),
    ("commutative", lambda: CommutativeConfig()),
    ("private-matching", lambda: PMConfig()),
]

BACKENDS = list(bk.available_backends())


class TestDeterministicBitIdentity:
    """Fixed inputs -> identical integers under every backend."""

    def test_commutative_application(self, comm_group):
        key = commutative.CommutativeKey(comm_group, exponent=65537)
        value = comm_group.random_element()
        outputs = set()
        for name in BACKENDS:
            with bk.use_backend(name):
                tag = commutative.apply(key, value)
                assert commutative.invert(key, tag) == value
                outputs.add(tag)
        assert len(outputs) == 1

    def test_paillier_fixed_randomness(self, paillier_key):
        public = paillier_key.public_key
        randomness = 0x1234567 % public.n
        ciphertexts, plaintexts = set(), set()
        for name in BACKENDS:
            with bk.use_backend(name):
                ciphertext = paillier.encrypt(public, 42, randomness)
                ciphertexts.add(ciphertext.value)
                plaintexts.add(paillier.decrypt(paillier_key, ciphertext))
                plaintexts.add(
                    paillier.decrypt_carmichael(paillier_key, ciphertext)
                )
        assert len(ciphertexts) == 1
        assert plaintexts == {42}

    def test_rsa_private_operation(self, rsa_key):
        value = 0xDEADBEEF
        outputs = set()
        for name in BACKENDS:
            with bk.use_backend(name):
                outputs.add(rsa.private_pow(rsa_key, value, use_crt=True))
                outputs.add(rsa.private_pow(rsa_key, value, use_crt=False))
        assert len(outputs) == 1

    def test_engine_batches(self, paillier_key):
        public = paillier_key.public_key
        plaintexts = list(range(16))
        randomness = [(i * 2 + 3) % public.n for i in range(16)]
        batch_values = set()
        for name in BACKENDS:
            engine = CryptoEngine(backend=name)
            ciphertexts = engine.batch_paillier_encrypt(
                public, plaintexts, randomness=randomness
            )
            batch_values.add(tuple(c.value for c in ciphertexts))
            assert engine.batch_paillier_decrypt(
                paillier_key, ciphertexts
            ) == plaintexts
        assert len(batch_values) == 1


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize(
    "protocol,make_config", PROTOCOL_MATRIX, ids=[p for p, _ in PROTOCOL_MATRIX]
)
def test_protocols_deliver_reference_join_under_each_backend(
    backend_name, protocol, make_config, make_federation, workload
):
    expected = natural_join(workload.relation_1, workload.relation_2)
    with bk.use_backend(backend_name):
        engine = CryptoEngine(backend=backend_name)
        federation = make_federation(workload)
        result = run_join_query(
            federation, QUERY, protocol=protocol,
            config=make_config(), engine=engine,
        )
    assert result.global_result == expected
    assert result.artifacts["crypto"]["backend"] == backend_name


@pytest.mark.skipif(
    len(BACKENDS) < 2, reason="single-backend host; matrix needs gmpy2"
)
@pytest.mark.parametrize(
    "protocol,make_config", PROTOCOL_MATRIX, ids=[p for p, _ in PROTOCOL_MATRIX]
)
def test_primitive_counts_identical_across_backends(
    protocol, make_config, make_federation, workload
):
    """Backends change arithmetic speed, never how many primitives run."""
    counts = []
    for name in BACKENDS:
        with bk.use_backend(name):
            federation = make_federation(workload)
            result = run_join_query(
                federation, QUERY, protocol=protocol, config=make_config()
            )
        counts.append(dict(result.primitive_counter.counts))
    assert counts[0], "run recorded no primitives"
    assert all(entry == counts[0] for entry in counts[1:])


def test_mixed_backend_interoperability(comm_group):
    """Ciphertexts produced under one backend decrypt under another.

    The strongest form of the divergence claim: a mediator on gmpy2 and
    a datasource on pure Python must interoperate transparently (this is
    exactly the CI TCP cross-backend topology, in miniature).
    """
    key = commutative.CommutativeKey(comm_group, exponent=101)
    value = comm_group.random_element()
    for encrypt_backend in BACKENDS:
        for decrypt_backend in BACKENDS:
            with bk.use_backend(encrypt_backend):
                tag = commutative.apply(key, value)
            with bk.use_backend(decrypt_backend):
                assert commutative.invert(key, tag) == value
