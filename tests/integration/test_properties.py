"""Property-based end-to-end tests over randomly generated relations.

Hypothesis drives small random relation pairs through the full protocol
stack; the master invariant (protocol result == reference natural join)
and the key leakage invariants must hold on every example.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import (
    CommutativeConfig,
    DASConfig,
    Federation,
    PMConfig,
    run_join_query,
)
from repro.mediation.access_control import allow_all
from repro.relational.algebra import natural_join
from repro.relational.relation import Relation
from repro.relational.schema import schema
from repro.transport import codec

S1 = schema("R1", k="int", a="string")
S2 = schema("R2", k="int", b="string")
QUERY = "select * from R1 natural join R2"

rows_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=6), st.text(max_size=4)),
    max_size=8,
)

SLOW_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def run_on(ca, client, rows_1, rows_2, protocol, config):
    r1 = Relation(S1, rows_1)
    r2 = Relation(S2, rows_2)
    federation = Federation(ca=ca)
    federation.add_source("S1", [(r1, allow_all())])
    federation.add_source("S2", [(r2, allow_all())])
    federation.attach_client(client)
    result = run_join_query(federation, QUERY, protocol=protocol, config=config)
    assert result.global_result == natural_join(r1, r2)
    # Wire invariant: every message the protocol produced survives a
    # codec round-trip unchanged, so a TCP run would carry it faithfully.
    for message in federation.network.transcript:
        encoded = codec.encode_envelope(
            message.sequence,
            message.sender,
            message.receiver,
            message.kind,
            message.body,
        )
        decoded = codec.decode_envelope(encoded)
        assert decoded == (
            message.sequence,
            message.sender,
            message.receiver,
            message.kind,
            message.body,
            None,  # no trace context attached outside a traced run
            None,  # no request id attached outside the TCP transport
            None,  # no session id attached outside a session scope
        )
    return result


class TestMasterInvariant:
    @given(rows_1=rows_strategy, rows_2=rows_strategy)
    @SLOW_SETTINGS
    def test_das(self, ca, client, rows_1, rows_2):
        run_on(ca, client, rows_1, rows_2, "das", DASConfig(buckets=2))

    @given(rows_1=rows_strategy, rows_2=rows_strategy)
    @SLOW_SETTINGS
    def test_commutative(self, ca, client, rows_1, rows_2):
        result = run_on(
            ca, client, rows_1, rows_2, "commutative", CommutativeConfig()
        )
        # Leakage invariant: the mediator-observed intersection equals
        # the true active-domain intersection.
        keys_1 = {row[0] for row in rows_1}
        keys_2 = {row[0] for row in rows_2}
        assert result.artifacts["intersection_size"] == len(keys_1 & keys_2)

    @given(rows_1=rows_strategy, rows_2=rows_strategy)
    @SLOW_SETTINGS
    def test_private_matching(self, ca, client, rows_1, rows_2):
        result = run_on(
            ca, client, rows_1, rows_2, "private-matching", PMConfig()
        )
        keys_1 = {row[0] for row in rows_1}
        keys_2 = {row[0] for row in rows_2}
        assert result.artifacts["matched_keys"] == len(keys_1 & keys_2)


class TestSupersetInvariant:
    @given(rows_1=rows_strategy, rows_2=rows_strategy)
    @SLOW_SETTINGS
    def test_das_server_result_superset(self, ca, client, rows_1, rows_2):
        result = run_on(ca, client, rows_1, rows_2, "das", DASConfig(buckets=2))
        assert result.artifacts["server_result_size"] >= len(
            result.global_result
        )
