"""The master invariant: every protocol reproduces the plaintext join.

For a spread of workload shapes (overlap levels, skew, domain types,
duplicate multiplicities) and every protocol/config combination, the
decrypted global result at the client must equal the reference natural
join of the (access-controlled) partial results.
"""

import pytest

from repro import (
    CommutativeConfig,
    DASConfig,
    Federation,
    PMConfig,
    run_join_query,
)
from repro.mediation.access_control import allow_all, require
from repro.relational.algebra import natural_join
from repro.relational.conditions import Comparison
from repro.relational.datagen import WorkloadSpec, generate
from repro.relational.schema import AttributeType

QUERY = "select * from R1 natural join R2"

PROTOCOL_MATRIX = [
    ("das", DASConfig(buckets=3)),
    ("das", DASConfig(strategy="equi_width", buckets=2)),
    ("das", DASConfig(strategy="singleton")),
    ("das", DASConfig(setting="mediator")),
    ("commutative", CommutativeConfig()),
    ("commutative", CommutativeConfig(use_tuple_ids=True)),
    ("private-matching", PMConfig()),
]

WORKLOAD_MATRIX = [
    WorkloadSpec(domain_1=5, domain_2=5, overlap=0, seed=1),
    WorkloadSpec(domain_1=5, domain_2=5, overlap=5, seed=2),
    WorkloadSpec(domain_1=8, domain_2=3, overlap=2, seed=3),
    WorkloadSpec(
        domain_1=6, domain_2=6, overlap=3,
        rows_per_value_1=4, rows_per_value_2=1, seed=4,
    ),
    WorkloadSpec(
        domain_1=6, domain_2=6, overlap=4, skew=1.2,
        rows_per_value_1=3, seed=5,
    ),
    WorkloadSpec(
        domain_1=5, domain_2=7, overlap=3,
        join_type=AttributeType.STRING, seed=6,
    ),
    WorkloadSpec(
        domain_1=1, domain_2=1, overlap=1, seed=7,
    ),
]


def build_federation(ca, client, workload):
    federation = Federation(ca=ca)
    federation.add_source("S1", [(workload.relation_1, allow_all())])
    federation.add_source("S2", [(workload.relation_2, allow_all())])
    federation.attach_client(client)
    return federation


@pytest.mark.parametrize("protocol,config", PROTOCOL_MATRIX)
@pytest.mark.parametrize("spec", WORKLOAD_MATRIX, ids=lambda s: f"seed{s.seed}")
def test_protocol_equals_reference_join(ca, client, spec, protocol, config):
    if (
        protocol == "das"
        and config.strategy == "equi_width"
        and spec.join_type is AttributeType.STRING
    ):
        pytest.skip("equi-width partitioning requires an integer domain")
    workload = generate(spec)
    expected = natural_join(workload.relation_1, workload.relation_2)
    federation = build_federation(ca, client, workload)
    result = run_join_query(federation, QUERY, protocol=protocol, config=config)
    assert result.global_result == expected


def test_pm_inline_mode_with_narrow_tuples(ca, client):
    """Inline payloads fit the 768-bit test key only for narrow tuple
    sets — the exact size pressure footnote 2 responds to (see also the
    A2 ablation benchmark)."""
    spec = WorkloadSpec(
        domain_1=5, domain_2=5, overlap=3,
        rows_per_value_1=1, rows_per_value_2=1,
        payload_attributes=1, payload_width=4, seed=21,
    )
    workload = generate(spec)
    federation = build_federation(ca, client, workload)
    result = run_join_query(
        federation, QUERY, protocol="private-matching",
        config=PMConfig(payload_mode="inline"),
    )
    assert result.global_result == natural_join(
        workload.relation_1, workload.relation_2
    )


@pytest.mark.parametrize("protocol", ["das", "commutative", "private-matching"])
def test_access_control_shapes_the_join(ca, client, protocol):
    """Row filtering at a source must propagate into the global result."""
    workload = generate(
        WorkloadSpec(domain_1=6, domain_2=6, overlap=6, seed=11)
    )
    # Permit only half of R1's rows by join-value parity.
    cutoff = sorted(workload.relation_1.active_domain("k"))[2]
    policy = require(
        ("role", "analyst"), condition=Comparison("k", ">", cutoff)
    )
    federation = Federation(ca=ca)
    federation.add_source("S1", [(workload.relation_1, policy)])
    federation.add_source("S2", [(workload.relation_2, allow_all())])
    federation.attach_client(client)

    filtered_r1 = workload.relation_1.filter(lambda row: row[0] > cutoff)
    expected = natural_join(filtered_r1, workload.relation_2)
    result = run_join_query(federation, QUERY, protocol=protocol)
    assert result.global_result == expected
    assert 0 < len(result.global_result) < workload.expected_join_size


@pytest.mark.parametrize("protocol", ["das", "commutative", "private-matching"])
def test_full_query_postprocessing(ca, client, protocol):
    """WHERE and projection above the join are applied at the client:
    the runner's result equals the reference evaluation of the *whole*
    query, not just the bare join."""
    from repro import reference_join

    workload = generate(
        WorkloadSpec(domain_1=6, domain_2=6, overlap=4, seed=17)
    )
    values = sorted(workload.relation_1.active_domain("k"))
    query = (
        f"select k, r2_p0 from R1 natural join R2 where k != {values[0]}"
    )
    expected = reference_join(build_federation(ca, client, workload), query)
    result = run_join_query(
        build_federation(ca, client, workload), query, protocol=protocol
    )
    assert result.global_result == expected
    assert result.global_result.schema.names() == ("k", "r2_p0")
    # The raw join (before client post-processing) is kept for audits.
    assert result.artifacts["join_rows_before_postprocessing"] >= len(expected)


@pytest.mark.parametrize("protocol", ["das", "commutative", "private-matching"])
def test_projection_applies_after_secure_join(ca, client, protocol):
    """The protocols deliver the join; tree post-operators still apply."""
    workload = generate(WorkloadSpec(domain_1=4, domain_2=4, overlap=2, seed=13))
    federation = build_federation(ca, client, workload)
    result = run_join_query(federation, QUERY, protocol=protocol)
    # Clients can evaluate the remaining algebra locally on the result.
    from repro.relational.algebra import project

    projected = project(result.global_result, ["k"])
    assert projected.schema.names() == ("k",)
    shared = set(workload.relation_1.active_domain("k")) & set(
        workload.relation_2.active_domain("k")
    )
    assert {row[0] for row in projected} == shared
