"""End-to-end mediated joins over loopback TCP.

Acceptance criterion of the transport subsystem: for all three delivery
protocols, a join over real sockets produces a global result identical
to the in-process bus run — same tuples, same transcript message kinds
in the same order — and the receiving endpoints' own records reconcile
with the sender-side transcript byte for byte.
"""

import pytest

from repro import Federation, run_join_query
from repro.mediation.access_control import allow_all
from repro.relational.algebra import natural_join
from repro.transport import RetryPolicy, TcpTransport

QUERY = "select * from R1 natural join R2"

#: Generous I/O deadlines (loopback is fast; CI machines are not).
POLICY = RetryPolicy(attempts=3, base_delay=0.05, connect_timeout=5.0,
                     io_timeout=30.0)

PROTOCOLS = ["das", "commutative", "private-matching"]


def build(ca, client, workload, network=None):
    if network is None:
        federation = Federation(ca=ca)
    else:
        federation = Federation(ca=ca, network=network)
    federation.add_source("S1", [(workload.relation_1, allow_all())])
    federation.add_source("S2", [(workload.relation_2, allow_all())])
    federation.attach_client(client)
    return federation


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_tcp_matches_bus_run(ca, client, workload, protocol):
    bus_federation = build(ca, client, workload)
    bus_result = run_join_query(bus_federation, QUERY, protocol=protocol)

    with TcpTransport(retry=POLICY) as transport:
        tcp_federation = build(ca, client, workload, network=transport)
        tcp_result = run_join_query(tcp_federation, QUERY, protocol=protocol)

        # Identical global result — and both equal the plaintext join.
        assert tcp_result.global_result == bus_result.global_result
        assert tcp_result.global_result == natural_join(
            workload.relation_1, workload.relation_2
        )

        # Identical transcript shape: kinds, order, and routing.
        bus_flow = [
            (m.sender, m.receiver, m.kind)
            for m in bus_federation.network.transcript
        ]
        tcp_flow = [
            (m.sender, m.receiver, m.kind)
            for m in tcp_federation.network.transcript
        ]
        assert tcp_flow == bus_flow

        # Every byte count in the TCP transcript is an actual frame size.
        for message in tcp_federation.network.transcript:
            assert message.size_bytes > 0


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_endpoint_views_reconcile_with_transcript(ca, client, workload, protocol):
    """What each endpoint recorded is exactly what the transcript says
    it received — sequence, sender, kind, and wire bytes."""
    with TcpTransport(retry=POLICY) as transport:
        federation = build(ca, client, workload, network=transport)
        run_join_query(federation, QUERY, protocol=protocol)
        for party in federation.network.parties():
            expected = [
                (m.sequence, m.sender, m.kind, m.size_bytes)
                for m in federation.network.transcript
                if m.receiver == party
            ]
            observed = [
                (r.sequence, r.sender, r.kind, r.wire_bytes)
                for r in transport.remote_view(party)
            ]
            assert observed == expected


def test_leakage_analysis_runs_unchanged_over_tcp(ca, client, workload):
    """The Table 1 analysis consumes TCP transcripts exactly like bus
    transcripts — the observability contract holds."""
    from repro.analysis import analyze

    with TcpTransport(retry=POLICY) as transport:
        federation = build(ca, client, workload, network=transport)
        result = run_join_query(federation, QUERY, protocol="commutative")
        report = analyze(result)
    assert report is not None
