"""Engine-mode equivalence: serial, pooled, and legacy runs must agree.

Acceptance invariant for the batched crypto engine: for every protocol,
a run under the pooled engine (process pool forced on via ``workers=2,
threshold=1``) must produce the *same global result* and the *same
primitive-counter totals* as a run under the serial engine — the pool
must be invisible except for wall-clock time.  The legacy engine
(Euler-criterion membership, Carmichael decryption, no CRT) is included
as a third leg: the algorithmic fast paths must not change results or
operation counts either.
"""

import pytest

from repro import CommutativeConfig, DASConfig, PMConfig, run_join_query
from repro.crypto.engine import CryptoEngine
from repro.relational.algebra import natural_join

QUERY = "select * from R1 natural join R2"

PROTOCOL_MATRIX = [
    ("das", DASConfig(buckets=3)),
    ("commutative", CommutativeConfig()),
    ("private-matching", PMConfig()),
]


@pytest.fixture(scope="module")
def engines():
    serial = CryptoEngine(workers=0)
    pooled = CryptoEngine(workers=2, threshold=1)
    legacy = CryptoEngine(workers=0, legacy=True)
    yield {"serial": serial, "pooled": pooled, "legacy": legacy}
    pooled.close()


def run_with(engine, make_federation, workload, protocol, config):
    federation = make_federation(workload)
    result = run_join_query(
        federation, QUERY, protocol=protocol, config=config, engine=engine
    )
    return result


@pytest.mark.parametrize(
    "protocol,config", PROTOCOL_MATRIX, ids=lambda v: str(v).split("(")[0]
)
def test_pooled_engine_is_invisible(
    engines, make_federation, workload, protocol, config
):
    expected_join = natural_join(workload.relation_1, workload.relation_2)
    results = {
        mode: run_with(engine, make_federation, workload, protocol, config)
        for mode, engine in engines.items()
    }
    for mode, result in results.items():
        assert result.global_result == expected_join, mode

    serial_counts = dict(results["serial"].primitive_counter.counts)
    assert serial_counts, "serial run recorded no primitives"
    # Satellite invariant: primitive counts survive the process pool —
    # workers count in their own process and the engine replays the
    # totals into the driver's counter.
    assert dict(results["pooled"].primitive_counter.counts) == serial_counts
    # The algorithmic fast paths (Jacobi membership, CRT decryption)
    # change *how* primitives run, never how many.
    assert dict(results["legacy"].primitive_counter.counts) == serial_counts


def test_pooled_engine_reuse_across_protocols(engines, make_federation, workload):
    """One long-lived pooled engine serves consecutive protocol runs."""
    pooled = engines["pooled"]
    for protocol, config in PROTOCOL_MATRIX:
        result = run_with(pooled, make_federation, workload, protocol, config)
        assert result.global_result == natural_join(
            workload.relation_1, workload.relation_2
        )
