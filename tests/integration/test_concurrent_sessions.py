"""Session isolation end to end: interleaved queries over one serve trio.

The acceptance contract of the sessionised stack (docs/transport.md):

* concurrent and sequential execution produce **identical join
  results** on all three protocols, over the in-process bus and over
  TCP against one shared mediator/S1/S2 endpoint trio;
* per-session endpoint views are disjoint — one session's filter never
  reveals another session's traffic;
* a fault injected into one session (here: a chaos-proxy crash) never
  alters another session's result.
"""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import Federation, setup_client, reference_join, run_join_query
from repro.errors import NetworkError, ReproError
from repro.faults import ChaosProxy, FaultInjector, FaultPlan, FaultRule
from repro.mediation.access_control import allow_all
from repro.session import session_scope
from repro.transport import RetryPolicy, TcpTransport

QUERY = "select * from R1 natural join R2"
PROTOCOLS = ("das", "commutative", "private-matching")
TRIO = ("mediator", "S1", "S2")

POLICY = RetryPolicy(connect_timeout=5.0, io_timeout=60.0)
#: Fast-failing policy for the chaos case: the crashed session must
#: give up in milliseconds while its neighbour keeps computing.
FAST = RetryPolicy(
    attempts=2, base_delay=0.01, max_delay=0.05, connect_timeout=0.5,
    io_timeout=2.0,
)


@pytest.fixture(scope="module")
def second_client(ca, paillier_scheme):
    """A second client with its own key material — interleaved sessions
    must not depend on sharing one credential set."""
    return setup_client(
        ca,
        identity="second-test-client",
        properties={("role", "analyst")},
        rsa_bits=1024,
        homomorphic_scheme=paillier_scheme,
    )


def build_federation(ca, client, workload, network=None) -> Federation:
    if network is None:
        federation = Federation(ca=ca)  # its own in-process bus
    else:
        federation = Federation(ca=ca, network=network)
    federation.add_source("S1", [(workload.relation_1, allow_all())])
    federation.add_source("S2", [(workload.relation_2, allow_all())])
    federation.attach_client(client)
    return federation


@pytest.fixture
def trio_hub():
    """One shared serve trio hosted in-process; yields (hub, endpoints)."""
    hub = TcpTransport(retry=POLICY, server_options={"ack_delay": 0.002})
    for party in TRIO:
        hub.register(party)
    endpoints = {party: hub.endpoint_of(party) for party in TRIO}
    yield hub, endpoints
    hub.close()


class TestConcurrentEqualsSequential:
    def test_three_protocols_interleaved_over_one_tcp_trio(
        self, ca, client, second_client, workload, make_federation, trio_hub
    ):
        hub, endpoints = trio_hub
        expected = reference_join(make_federation(workload), QUERY)
        clients = {
            "das": client, "commutative": second_client,
            "private-matching": client,
        }

        transports: dict[str, TcpTransport] = {}
        try:
            for protocol in PROTOCOLS:
                transports[protocol] = TcpTransport(
                    endpoints=dict(endpoints), retry=POLICY
                )

            def run_one(protocol: str):
                federation = build_federation(
                    ca, clients[protocol], workload, transports[protocol]
                )
                return run_join_query(
                    federation, QUERY, protocol=protocol,
                    session_id=f"sess-{protocol}",
                )

            with ThreadPoolExecutor(max_workers=len(PROTOCOLS)) as pool:
                concurrent = dict(
                    zip(PROTOCOLS, pool.map(run_one, PROTOCOLS))
                )
            # Every interleaved protocol produced the reference join.
            for protocol, result in concurrent.items():
                assert result.global_result == expected, protocol

            # Per-session endpoint views are disjoint and complete
            # (checked while the sessions are live — closing a
            # transport farewells its sessions and drops their views):
            # each session saw only its own traffic, and together the
            # sessions account for every record at the endpoint.
            for party in TRIO:
                server = hub.local_server(party)
                session_ids = [f"sess-{p}" for p in PROTOCOLS]
                per_session = [
                    server.session_records(sid) for sid in session_ids
                ]
                assert sum(len(view) for view in per_session) == len(
                    server.records
                )
                for view, sid in zip(per_session, session_ids):
                    if view:
                        # A view contains only traffic a protocol aimed
                        # at this party — nothing leaked across sessions.
                        assert all(
                            record.receiver == party for record in view
                        ), sid

            # The same runs executed sequentially agree with the
            # concurrent ones (fresh transports and sessions, same
            # shared trio — a transport registers its parties once).
            for protocol in PROTOCOLS:
                with TcpTransport(
                    endpoints=dict(endpoints), retry=POLICY
                ) as sequential_transport:
                    federation = build_federation(
                        ca, clients[protocol], workload, sequential_transport
                    )
                    sequential = run_join_query(
                        federation, QUERY, protocol=protocol,
                        session_id=f"seq-{protocol}",
                    )
                assert (
                    sequential.global_result
                    == concurrent[protocol].global_result
                ), protocol
        finally:
            for transport in transports.values():
                transport.close()

    def test_interleaved_bus_sessions_match_reference(
        self, ca, client, second_client, workload, make_federation
    ):
        expected = reference_join(make_federation(workload), QUERY)
        clients = {
            "das": client, "commutative": second_client,
            "private-matching": client,
        }

        def run_one(protocol: str):
            # Each bus federation carries its own Network; the session
            # scope still isolates tracing/mediator/datasource state.
            federation = build_federation(ca, clients[protocol], workload)
            return run_join_query(
                federation, QUERY, protocol=protocol,
                session_id=f"bus-{protocol}",
            )

        with ThreadPoolExecutor(max_workers=len(PROTOCOLS)) as pool:
            results = list(pool.map(run_one, PROTOCOLS))
        for protocol, result in zip(PROTOCOLS, results):
            assert result.global_result == expected, protocol


class TestFaultIsolationAcrossSessions:
    def test_crash_in_one_session_never_alters_the_other(
        self, ca, client, second_client, workload, make_federation, trio_hub
    ):
        hub, endpoints = trio_hub
        expected = reference_join(make_federation(workload), QUERY)

        # Session "doomed" reaches S1 through a chaos proxy that
        # crashes on the first S1-bound delivery of exactly that
        # session; session "healthy" dials S1 directly.
        injector = FaultInjector(
            FaultPlan(
                seed=11,
                rules=(
                    FaultRule(
                        action="crash", party="S1", session="sess-doomed"
                    ),
                ),
            )
        )
        with ChaosProxy(endpoints["S1"], injector) as proxy:
            doomed_endpoints = dict(endpoints)
            doomed_endpoints["S1"] = (proxy.host, proxy.port)
            doomed_transport = TcpTransport(
                endpoints=doomed_endpoints, retry=FAST
            )
            healthy_transport = TcpTransport(
                endpoints=dict(endpoints), retry=POLICY
            )
            try:
                def run_doomed():
                    federation = build_federation(
                        ca, client, workload, doomed_transport
                    )
                    return run_join_query(
                        federation, QUERY, protocol="commutative",
                        session_id="sess-doomed", on_failure="return",
                    )

                def run_healthy():
                    federation = build_federation(
                        ca, second_client, workload, healthy_transport
                    )
                    return run_join_query(
                        federation, QUERY, protocol="commutative",
                        session_id="sess-healthy",
                    )

                with ThreadPoolExecutor(max_workers=2) as pool:
                    doomed_future = pool.submit(run_doomed)
                    healthy_future = pool.submit(run_healthy)
                    doomed = doomed_future.result()
                    healthy = healthy_future.result()
            finally:
                doomed_transport.close()
                healthy_transport.close()

        # The doomed session failed structurally...
        assert not doomed.ok
        assert doomed.error_type in ("NetworkError", "DeadlineExceeded")
        # ...while its neighbour's join is untouched by the crash.
        assert healthy.global_result == expected
        # The injected fault is attributed to the *rule's* session
        # matcher — the deterministic-log contract.
        fired = [event for event in injector.events if event.action == "crash"]
        assert len(fired) == 1
        assert fired[0].session == "sess-doomed"
        assert "session=sess-doomed" in fired[0].summary()

    def test_session_scoped_rule_ignores_other_sessions(
        self, ca, client, workload, trio_hub
    ):
        hub, endpoints = trio_hub
        # The rule targets a session that never runs through the proxy;
        # the session that does must pass unharmed.
        injector = FaultInjector(
            FaultPlan(
                seed=7,
                rules=(
                    FaultRule(
                        action="drop", party="S1", session="sess-absent",
                        max_triggers=0,
                    ),
                ),
            )
        )
        with ChaosProxy(endpoints["S1"], injector) as proxy:
            proxied = dict(endpoints)
            proxied["S1"] = (proxy.host, proxy.port)
            transport = TcpTransport(endpoints=proxied, retry=FAST)
            try:
                transport.register("client")
                for party in TRIO:
                    transport.register(party)
                with session_scope("sess-present"):
                    transport.send("client", "S1", "step", {"n": 1})
            finally:
                transport.close()
        assert injector.events == []
