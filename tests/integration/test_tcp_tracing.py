"""Trace-context propagation across the TCP boundary and the worker pool.

The distributed-tracing acceptance story: one traced run over TCP must
yield a *single* trace — every party's spans carry the same trace ID,
each endpoint ``recv:`` span hangs off the matching sender ``send:``
span, and crypto-engine pool workers' chunk spans hang off the driver's
batch span.
"""

import pytest

from repro.core.runner import run_join_query
from repro.crypto.engine import CryptoEngine, use_engine
from repro.mediation.access_control import allow_all
from repro.mediation.ca import CertificationAuthority
from repro.mediation.client import default_homomorphic_scheme, setup_client
from repro.core.federation import Federation
from repro.relational.relation import Relation
from repro.relational.schema import schema
from repro.telemetry import (
    MetricsRegistry,
    Tracer,
    use_metrics,
    use_tracer,
)
from repro.telemetry.metrics import PRIMITIVE_OPS_METRIC
from repro.transport import codec
from repro.transport.tcp import TcpTransport

S1_SCHEMA = schema("R1", k="int", a="string")
S2_SCHEMA = schema("R2", k="int", b="string")
QUERY = "select * from R1 natural join R2"


def build_federation(network=None) -> Federation:
    ca = CertificationAuthority(key_bits=1024)
    federation = (
        Federation(ca=ca, network=network) if network else Federation(ca=ca)
    )
    r1 = Relation(S1_SCHEMA, [(1, "x"), (2, "y"), (3, "z")])
    r2 = Relation(S2_SCHEMA, [(2, "p"), (3, "q"), (4, "r")])
    federation.add_source("S1", [(r1, allow_all())])
    federation.add_source("S2", [(r2, allow_all())])
    federation.attach_client(
        setup_client(
            ca,
            "client",
            {("role", "analyst")},
            rsa_bits=1024,
            homomorphic_scheme=default_homomorphic_scheme(1024),
        )
    )
    return federation


class TestEnvelopeTraceContext:
    def test_untraced_envelope_keeps_legacy_wire_shape(self):
        encoded = codec.encode_envelope(1, "a", "b", "kind", {"x": 1})
        assert codec.decode_envelope(encoded) == (
            1, "a", "b", "kind", {"x": 1}, None, None, None,
        )
        # Byte-identical to a hand-built 5-tuple: old peers interoperate.
        assert encoded == codec.encode_value((1, "a", "b", "kind", {"x": 1}))

    def test_trace_context_rides_the_envelope(self):
        trace = ("t" * 32, "s" * 16)
        encoded = codec.encode_envelope(
            7, "S1", "mediator", "tags", [1, 2], trace=trace
        )
        decoded = codec.decode_envelope(encoded)
        assert decoded[:5] == (7, "S1", "mediator", "tags", [1, 2])
        assert decoded[5] == trace

    def test_malformed_trace_context_rejected(self):
        from repro.errors import EncodingError

        bad = codec.encode_value((1, "a", "b", "k", None, ("only-one",)))
        with pytest.raises(EncodingError):
            codec.decode_envelope(bad)


class TestDistributedTrace:
    def test_tcp_run_produces_one_stitched_trace(self):
        tracer = Tracer()
        registry = MetricsRegistry()
        transport = TcpTransport()
        try:
            with use_tracer(tracer), use_metrics(registry):
                federation = build_federation(network=transport)
                result = run_join_query(
                    federation, QUERY, protocol="commutative"
                )
                transport.harvest_telemetry()
        finally:
            transport.close()
        assert len(result.global_result) == 2

        # Everything — client, mediator, both sources, send and recv
        # spans — belongs to one trace.
        assert tracer.trace_ids() == {tracer.trace_id}
        assert {"client", "mediator", "S1", "S2"} <= tracer.parties()

        # Every transcript message has a send span at the sender and an
        # adopted recv span at the receiving endpoint, and the recv
        # span's parent edge points at exactly that send span.
        sends = {s.span_id: s for s in tracer.spans if s.name.startswith("send:")}
        recvs = [s for s in tracer.spans if s.name.startswith("recv:")]
        assert len(sends) == len(result.network.transcript)
        assert len(recvs) == len(result.network.transcript)
        for recv in recvs:
            parent = sends[recv.parent_id]
            assert parent.name == "send:" + recv.name.removeprefix("recv:")
            assert parent.party == recv.attributes["sender"]
            assert recv.party == parent.attributes["receiver"]
            assert recv.attributes["sequence"] == parent.attributes["sequence"]

        # Transcript and trace agree message-by-message.
        for message in result.network.transcript:
            matching = [
                s for s in sends.values()
                if s.attributes["sequence"] == message.sequence
            ]
            assert len(matching) == 1
            assert matching[0].party == message.sender
            assert matching[0].attributes["receiver"] == message.receiver

        # Endpoint metrics merged into the installed registry.
        assert registry.total("repro_endpoint_messages_total") == len(
            result.network.transcript
        )

    def test_primitive_totals_match_counter_at_equal_scope(self):
        registry = MetricsRegistry()
        from repro.crypto.instrumentation import count_primitives

        with use_metrics(registry), count_primitives() as counter:
            federation = build_federation()
            run_join_query(federation, QUERY, protocol="commutative")
        assert registry.primitive_counts() == dict(counter.counts)
        assert registry.total(PRIMITIVE_OPS_METRIC) == sum(
            counter.counts.values()
        )

    def test_results_identical_with_and_without_telemetry(self):
        plain = run_join_query(build_federation(), QUERY, protocol="commutative")
        tracer = Tracer()
        with use_tracer(tracer), use_metrics(MetricsRegistry()):
            traced = run_join_query(
                build_federation(), QUERY, protocol="commutative"
            )
        assert plain.global_result == traced.global_result
        assert dict(plain.primitive_counter.counts) == dict(
            traced.primitive_counter.counts
        )


class TestPoolWorkerSpans:
    def test_worker_chunk_spans_land_under_the_batch_span(self):
        tracer = Tracer()
        engine = CryptoEngine(workers=2, threshold=1)
        try:
            with use_tracer(tracer), use_engine(engine):
                with tracer.span("step", "S1"):
                    engine.batch_pow([2, 3, 4, 5], 65537, (1 << 61) - 1)
        finally:
            engine.close()
        (step,) = tracer.find("step")
        batches = [s for s in tracer.spans if s.name == "crypto:pow"]
        assert len(batches) == 1
        batch = batches[0]
        assert batch.parent_id == step.span_id
        assert batch.party == "S1"
        assert batch.attributes["mode"] == "pooled"
        chunks = tracer.find("crypto:chunk")
        assert chunks, "pool workers shipped no spans back"
        assert all(c.parent_id == batch.span_id for c in chunks)
        assert all(c.trace_id == tracer.trace_id for c in chunks)
        assert all(c.party == "S1" for c in chunks)
        assert sum(c.attributes["items"] for c in chunks) == 4

    def test_serial_batch_records_only_the_batch_span(self):
        tracer = Tracer()
        engine = CryptoEngine(workers=0)
        with use_tracer(tracer), use_engine(engine):
            engine.batch_pow([2, 3], 3, 97)
        assert tracer.find("crypto:chunk") == []
        (batch,) = tracer.find("crypto:pow")
        assert batch.attributes["mode"] == "serial"

    def test_pool_counts_unchanged_by_tracing(self):
        from repro.crypto.commutative import generate_key
        from repro.crypto.groups import TEST_GROUP_BITS, commutative_group
        from repro.crypto.instrumentation import count_primitives

        group = commutative_group(TEST_GROUP_BITS)
        key = generate_key(group)
        values = [group.random_element() for _ in range(6)]

        def run(engine, tracer=None):
            with count_primitives() as counter:
                if tracer is None:
                    out = engine.batch_commutative_encrypt(key, values)
                else:
                    with use_tracer(tracer):
                        out = engine.batch_commutative_encrypt(key, values)
            return out, dict(counter.counts)

        serial = CryptoEngine(workers=0)
        pooled = CryptoEngine(workers=2, threshold=1)
        try:
            base_out, base_counts = run(serial)
            traced_out, traced_counts = run(pooled, Tracer())
        finally:
            pooled.close()
        assert traced_out == base_out
        assert traced_counts == base_counts
