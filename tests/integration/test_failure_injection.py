"""Failure injection: the protocols must fail closed, not fabricate data."""

import pytest

from repro import Federation, run_join_query, setup_client
from repro.core.commutative import _prepare_source
from repro.core.das import EncryptedTuple, ServerQuery, _evaluate_server_query
from repro.crypto import groups, hybrid
from repro.crypto.hashes import IdealHash
from repro.crypto.homomorphic import PaillierScheme
from repro.errors import (
    AccessDenied,
    CredentialError,
    EncodingError,
    IntegrityError,
)
from repro.mediation.access_control import allow_all, require
from repro.mediation.credentials import Credential
from repro.relational.datagen import WorkloadSpec, generate

QUERY = "select * from R1 natural join R2"


def build_federation(ca, client, workload, policy_1=None):
    federation = Federation(ca=ca)
    federation.add_source(
        "S1", [(workload.relation_1, policy_1 or allow_all())]
    )
    federation.add_source("S2", [(workload.relation_2, allow_all())])
    federation.attach_client(client)
    return federation


class TestAccessFailures:
    @pytest.mark.parametrize(
        "protocol", ["das", "commutative", "private-matching"]
    )
    def test_denied_before_any_ciphertext_flows(
        self, ca, client, workload, protocol
    ):
        federation = build_federation(
            ca, client, workload, policy_1=require(("role", "superuser"))
        )
        with pytest.raises(AccessDenied):
            run_join_query(federation, QUERY, protocol=protocol)
        # Nothing beyond the request phase ever hit the wire.
        kinds = {m.kind for m in federation.network.transcript}
        assert kinds == {"global_query", "partial_query"}

    def test_forged_credential_rejected_by_source(self, ca, client, workload):
        federation = build_federation(ca, client, workload)
        genuine = client.credentials[0]
        forged = Credential(
            properties=frozenset({("role", "superuser")}),
            public_key=genuine.public_key,
            issuer=genuine.issuer,
            signature=genuine.signature,  # signature of *other* properties
        )
        client.credentials.append(forged)
        try:
            with pytest.raises(CredentialError):
                run_join_query(federation, QUERY, protocol="commutative")
        finally:
            client.credentials.remove(forged)


class TestCiphertextTampering:
    def test_tampered_etuple_detected_at_client(self, ca, client, workload):
        # Simulate a malicious mediator flipping a byte inside an etuple:
        # the hybrid layer's MAC must catch it at decryption time.
        keys = client.credential_public_keys()
        ciphertext = hybrid.encrypt(keys, b"row-bytes")
        body = bytearray(ciphertext.body)
        body[-1] ^= 0x01
        tampered = hybrid.HybridCiphertext(ciphertext.wrapped_keys, bytes(body))
        with pytest.raises(IntegrityError):
            client.decrypt_hybrid(tampered)

    def test_tampered_side_table_entry_detected(self, client):
        session_key = bytes(range(32))
        blob = bytearray(hybrid.session_encrypt(session_key, b"tuple set"))
        blob[20] ^= 0xFF
        with pytest.raises(IntegrityError):
            hybrid.session_decrypt(session_key, bytes(blob))


class TestProtocolMisconfiguration:
    def test_mismatched_ideal_hashes_match_nothing(self, client, workload):
        """If the sources disagree on the random oracle, equal join
        values hash differently and the mediator finds no matches —
        a silent empty result, never a wrong one."""
        group = groups.commutative_group(128)
        keys = client.credential_public_keys()
        from repro.core.commutative import CommutativeConfig

        config = CommutativeConfig()
        _, messages_1 = _prepare_source(
            workload.relation_1, ("k",), group,
            IdealHash(group.p, tag=b"oracle-A"), keys, config,
        )
        state_2, _ = _prepare_source(
            workload.relation_2, ("k",), group,
            IdealHash(group.p, tag=b"oracle-B"), keys, config,
        )
        from repro.crypto import commutative as comm

        tags_1 = {comm.apply(state_2.key, m.tag) for m in messages_1}
        # Double-encrypt relation_2's own values under both keys.
        # With mismatched oracles, no tag can coincide.
        _, messages_2 = _prepare_source(
            workload.relation_2, ("k",), group,
            IdealHash(group.p, tag=b"oracle-B"), keys, config,
        )
        tags_2 = {comm.apply(state_2.key, m.tag) for m in messages_2}
        assert not (tags_1 & tags_2)

    def test_pm_key_too_small_for_payload(self, ca, workload):
        """A homomorphic message space too small for the session payload
        must fail loudly with guidance, not truncate silently."""
        tiny_client = setup_client(
            ca,
            "tiny",
            {("role", "analyst")},
            rsa_bits=1024,
            homomorphic_scheme=PaillierScheme(256),
        )
        federation = Federation(ca=ca)
        federation.add_source("S1", [(workload.relation_1, allow_all())])
        federation.add_source("S2", [(workload.relation_2, allow_all())])
        federation.attach_client(tiny_client)
        with pytest.raises(EncodingError):
            run_join_query(federation, QUERY, protocol="private-matching")


class TestDASServerQueryRobustness:
    def test_unknown_index_pairs_select_nothing(self, client, workload):
        keys = client.credential_public_keys()
        from repro.core.das import EncryptedRelation
        from repro.relational.encoding import encode_row

        rows = tuple(
            EncryptedTuple(hybrid.encrypt(keys, encode_row(row)), index_value=7)
            for row in workload.relation_1
        )
        relation = EncryptedRelation("S1", "R1", rows)
        empty = _evaluate_server_query(
            ServerQuery(pairs=((1, 2),)), relation, relation
        )
        assert len(empty) == 0

    def test_empty_server_query(self, client, workload):
        from repro.core.das import EncryptedRelation

        relation = EncryptedRelation("S1", "R1", ())
        assert len(
            _evaluate_server_query(ServerQuery(pairs=()), relation, relation)
        ) == 0
