"""Failure injection: the protocols must fail closed, not fabricate data."""

import asyncio
import socket
import threading
import time

import pytest

from repro import Federation, run_join_query, setup_client
from repro.core.commutative import _prepare_source
from repro.core.das import EncryptedTuple, ServerQuery, _evaluate_server_query
from repro.crypto import groups, hybrid
from repro.crypto.hashes import IdealHash
from repro.crypto.homomorphic import PaillierScheme
from repro.errors import (
    AccessDenied,
    CredentialError,
    EncodingError,
    IntegrityError,
    NetworkError,
)
from repro.mediation.access_control import allow_all, require
from repro.mediation.credentials import Credential
from repro.relational.datagen import WorkloadSpec, generate
from repro.transport import PartyServer, RetryPolicy, TcpTransport

QUERY = "select * from R1 natural join R2"


def build_federation(ca, client, workload, policy_1=None):
    federation = Federation(ca=ca)
    federation.add_source(
        "S1", [(workload.relation_1, policy_1 or allow_all())]
    )
    federation.add_source("S2", [(workload.relation_2, allow_all())])
    federation.attach_client(client)
    return federation


class TestAccessFailures:
    @pytest.mark.parametrize(
        "protocol", ["das", "commutative", "private-matching"]
    )
    def test_denied_before_any_ciphertext_flows(
        self, ca, client, workload, protocol
    ):
        federation = build_federation(
            ca, client, workload, policy_1=require(("role", "superuser"))
        )
        with pytest.raises(AccessDenied):
            run_join_query(federation, QUERY, protocol=protocol)
        # Nothing beyond the request phase ever hit the wire.
        kinds = {m.kind for m in federation.network.transcript}
        assert kinds == {"global_query", "partial_query"}

    def test_forged_credential_rejected_by_source(self, ca, client, workload):
        federation = build_federation(ca, client, workload)
        genuine = client.credentials[0]
        forged = Credential(
            properties=frozenset({("role", "superuser")}),
            public_key=genuine.public_key,
            issuer=genuine.issuer,
            signature=genuine.signature,  # signature of *other* properties
        )
        client.credentials.append(forged)
        try:
            with pytest.raises(CredentialError):
                run_join_query(federation, QUERY, protocol="commutative")
        finally:
            client.credentials.remove(forged)


class TestCiphertextTampering:
    def test_tampered_etuple_detected_at_client(self, ca, client, workload):
        # Simulate a malicious mediator flipping a byte inside an etuple:
        # the hybrid layer's MAC must catch it at decryption time.
        keys = client.credential_public_keys()
        ciphertext = hybrid.encrypt(keys, b"row-bytes")
        body = bytearray(ciphertext.body)
        body[-1] ^= 0x01
        tampered = hybrid.HybridCiphertext(ciphertext.wrapped_keys, bytes(body))
        with pytest.raises(IntegrityError):
            client.decrypt_hybrid(tampered)

    def test_tampered_side_table_entry_detected(self, client):
        session_key = bytes(range(32))
        blob = bytearray(hybrid.session_encrypt(session_key, b"tuple set"))
        blob[20] ^= 0xFF
        with pytest.raises(IntegrityError):
            hybrid.session_decrypt(session_key, bytes(blob))


class TestProtocolMisconfiguration:
    def test_mismatched_ideal_hashes_match_nothing(self, client, workload):
        """If the sources disagree on the random oracle, equal join
        values hash differently and the mediator finds no matches —
        a silent empty result, never a wrong one."""
        group = groups.commutative_group(128)
        keys = client.credential_public_keys()
        from repro.core.commutative import CommutativeConfig

        config = CommutativeConfig()
        _, messages_1 = _prepare_source(
            workload.relation_1, ("k",), group,
            IdealHash(group.p, tag=b"oracle-A"), keys, config,
        )
        state_2, _ = _prepare_source(
            workload.relation_2, ("k",), group,
            IdealHash(group.p, tag=b"oracle-B"), keys, config,
        )
        from repro.crypto import commutative as comm

        tags_1 = {comm.apply(state_2.key, m.tag) for m in messages_1}
        # Double-encrypt relation_2's own values under both keys.
        # With mismatched oracles, no tag can coincide.
        _, messages_2 = _prepare_source(
            workload.relation_2, ("k",), group,
            IdealHash(group.p, tag=b"oracle-B"), keys, config,
        )
        tags_2 = {comm.apply(state_2.key, m.tag) for m in messages_2}
        assert not (tags_1 & tags_2)

    def test_pm_key_too_small_for_payload(self, ca, workload):
        """A homomorphic message space too small for the session payload
        must fail loudly with guidance, not truncate silently."""
        tiny_client = setup_client(
            ca,
            "tiny",
            {("role", "analyst")},
            rsa_bits=1024,
            homomorphic_scheme=PaillierScheme(256),
        )
        federation = Federation(ca=ca)
        federation.add_source("S1", [(workload.relation_1, allow_all())])
        federation.add_source("S2", [(workload.relation_2, allow_all())])
        federation.attach_client(tiny_client)
        with pytest.raises(EncodingError):
            run_join_query(federation, QUERY, protocol="private-matching")


#: Fast-failing policy so the fault tests finish in well under a second
#: per injected failure while still exercising two backoff sleeps.
FAST = RetryPolicy(
    attempts=3, base_delay=0.01, max_delay=0.05, connect_timeout=0.5,
    io_timeout=0.5,
)


class _MuteEndpoint:
    """A listener that accepts connections and never answers anything."""

    def __init__(self) -> None:
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen()
        self._listener.settimeout(0.1)
        self.port = self._listener.getsockname()[1]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._accept, daemon=True)
        self._thread.start()

    def _accept(self) -> None:
        held = []
        while not self._stop.is_set():
            try:
                held.append(self._listener.accept()[0])
            except OSError:
                continue
        for connection in held:
            connection.close()

    def close(self) -> None:
        self._stop.set()
        self._thread.join()
        self._listener.close()


class _ThreadedEndpoint:
    """A real PartyServer hosted on its own event-loop thread, so a
    fault (``max_messages``) can be injected into a 'remote' party."""

    def __init__(self, party: str, *, max_messages: int | None = None) -> None:
        self.server = PartyServer(party, max_messages=max_messages)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, daemon=True
        )
        self._thread.start()
        self.address = asyncio.run_coroutine_threadsafe(
            self.server.start(), self._loop
        ).result()

    def close(self) -> None:
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self._loop
        ).result()
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._loop.close()


class TestTransportFaults:
    """Socket-level faults surface as NetworkError — with the retry and
    backoff machinery exercised — and never hang the protocol run."""

    def test_never_answering_datasource_times_out(self, ca, workload):
        mute = _MuteEndpoint()
        transport = TcpTransport(
            endpoints={"S1": ("127.0.0.1", mute.port)}, retry=FAST
        )
        try:
            federation = Federation(ca=ca, network=transport)
            started = time.perf_counter()
            with pytest.raises(NetworkError, match="timed out"):
                federation.add_source(
                    "S1", [(workload.relation_1, allow_all())]
                )
            elapsed = time.perf_counter() - started
            assert elapsed >= FAST.io_timeout  # really waited the deadline
            assert elapsed < 10  # ... and did not hang
        finally:
            transport.close()
            mute.close()

    def test_connection_refused_exhausts_retries_with_backoff(
        self, ca, workload
    ):
        with socket.socket() as probe:  # a port nothing listens on
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        transport = TcpTransport(
            endpoints={"S2": ("127.0.0.1", dead_port)}, retry=FAST
        )
        try:
            federation = Federation(ca=ca, network=transport)
            federation.add_source("S1", [(workload.relation_1, allow_all())])
            started = time.perf_counter()
            with pytest.raises(NetworkError, match="after 3 attempts"):
                federation.add_source(
                    "S2", [(workload.relation_2, allow_all())]
                )
            # Two backoff sleeps happened: 0.01 + 0.02 seconds.
            assert time.perf_counter() - started >= 0.03
        finally:
            transport.close()

    def test_mediator_dying_mid_protocol(self, ca, client, workload):
        """The mediator's endpoint aborts (without acknowledging) after
        two protocol messages: the sender must raise, not resend or
        hang, and the transcript stops at the point of death."""
        dying = _ThreadedEndpoint("mediator", max_messages=2)
        transport = TcpTransport(
            endpoints={"mediator": dying.address}, retry=FAST
        )
        try:
            federation = Federation(ca=ca, network=transport)
            federation.add_source("S1", [(workload.relation_1, allow_all())])
            federation.add_source("S2", [(workload.relation_2, allow_all())])
            federation.attach_client(client)
            with pytest.raises(NetworkError):
                run_join_query(federation, QUERY, protocol="commutative")
            delivered = [
                m for m in federation.network.transcript
                if m.receiver == "mediator"
            ]
            assert len(delivered) == 2  # nothing past the injected fault
        finally:
            transport.close()
            dying.close()


class TestDASServerQueryRobustness:
    def test_unknown_index_pairs_select_nothing(self, client, workload):
        keys = client.credential_public_keys()
        from repro.core.das import EncryptedRelation
        from repro.relational.encoding import encode_row

        rows = tuple(
            EncryptedTuple(hybrid.encrypt(keys, encode_row(row)), index_value=7)
            for row in workload.relation_1
        )
        relation = EncryptedRelation("S1", "R1", rows)
        empty = _evaluate_server_query(
            ServerQuery(pairs=((1, 2),)), relation, relation
        )
        assert len(empty) == 0

    def test_empty_server_query(self, client, workload):
        from repro.core.das import EncryptedRelation

        relation = EncryptedRelation("S1", "R1", ())
        assert len(
            _evaluate_server_query(ServerQuery(pairs=()), relation, relation)
        ) == 0
