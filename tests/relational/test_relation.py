"""Tests for Relation: set semantics, typed rows, helpers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchemaError
from repro.relational.relation import Relation, relation
from repro.relational.schema import schema

S = schema("R", k="int", label="string")


class TestConstruction:
    def test_basic(self):
        r = Relation(S, [(1, "a"), (2, "b")])
        assert len(r) == 2

    def test_duplicates_collapse(self):
        r = Relation(S, [(1, "a"), (1, "a"), (2, "b")])
        assert len(r) == 2

    def test_arity_checked(self):
        with pytest.raises(SchemaError):
            Relation(S, [(1,)])

    def test_types_checked(self):
        with pytest.raises(SchemaError):
            Relation(S, [("one", "a")])
        with pytest.raises(SchemaError):
            Relation(S, [(True, "a")])  # bool is not int in the model

    def test_empty(self):
        r = Relation(S, [])
        assert len(r) == 0 and list(r) == []

    def test_dict_rows(self):
        r = relation(S, [{"k": 1, "label": "a"}, (2, "b")])
        assert (1, "a") in r and (2, "b") in r

    def test_dict_rows_missing_attribute(self):
        with pytest.raises(SchemaError):
            relation(S, [{"k": 1}])

    def test_deterministic_order(self):
        r1 = Relation(S, [(2, "b"), (1, "a")])
        r2 = Relation(S, [(1, "a"), (2, "b")])
        assert r1.rows == r2.rows


class TestEquality:
    def test_name_independent(self):
        r1 = Relation(S, [(1, "a")])
        r2 = Relation(S.rename("other"), [(1, "a")])
        assert r1 == r2

    def test_content_sensitive(self):
        assert Relation(S, [(1, "a")]) != Relation(S, [(2, "a")])

    def test_attribute_sensitive(self):
        other = schema("R", k="int", tag="string")
        assert Relation(S, [(1, "a")]) != Relation(other, [(1, "a")])

    def test_hashable(self):
        assert Relation(S, [(1, "a")]) in {Relation(S, [(1, "a")])}


class TestHelpers:
    @pytest.fixture
    def r(self):
        return Relation(S, [(1, "a"), (1, "b"), (2, "c"), (3, "d")])

    def test_value(self, r):
        row = r.rows[0]
        assert r.value(row, "k") == row[0]
        assert r.value(row, "R.label") == row[1]

    def test_active_domain(self, r):
        assert r.active_domain("k") == (1, 2, 3)
        assert set(r.active_domain("label")) == {"a", "b", "c", "d"}

    def test_tuples_with(self, r):
        sub = r.tuples_with("k", 1)
        assert set(sub.rows) == {(1, "a"), (1, "b")}

    def test_tuples_with_absent_value(self, r):
        assert len(r.tuples_with("k", 99)) == 0

    def test_group_by(self, r):
        groups = r.group_by("k")
        assert set(groups) == {1, 2, 3}
        assert set(groups[1]) == {(1, "a"), (1, "b")}
        # Union of groups is the relation.
        total = sum(len(rows) for rows in groups.values())
        assert total == len(r)

    def test_filter(self, r):
        evens = r.filter(lambda row: row[0] % 2 == 0)
        assert set(evens.rows) == {(2, "c")}

    def test_rename(self, r):
        assert r.rename("X").name == "X"

    def test_as_dicts(self, r):
        dicts = r.as_dicts()
        assert {"k": 1, "label": "a"} in dicts
        assert len(dicts) == 4

    def test_pretty_contains_rows(self, r):
        rendered = r.pretty()
        assert "k" in rendered and "label" in rendered
        assert "a" in rendered

    def test_pretty_truncation(self):
        big = Relation(S, [(i, f"v{i}") for i in range(50)])
        rendered = big.pretty(max_rows=5)
        assert "more rows" in rendered


@given(
    st.lists(
        st.tuples(st.integers(0, 20), st.text(max_size=4)),
        max_size=30,
    )
)
@settings(max_examples=50, deadline=None)
def test_group_by_partitions_relation(rows):
    r = Relation(S, rows)
    groups = r.group_by("k")
    reassembled = {row for group in groups.values() for row in group}
    assert reassembled == set(r.rows)
    for key, group in groups.items():
        assert all(row[0] == key for row in group)
