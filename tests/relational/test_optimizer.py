"""Tests for the selection push-down optimizer."""

import pytest

from repro.relational import algebra, sql
from repro.relational.optimizer import push_down_selections
from repro.relational.relation import Relation
from repro.relational.schema import schema

S1 = schema("R1", k="int", a="string")
S2 = schema("R2", k="int", b="string")
SCHEMAS = {"R1": S1, "R2": S2}
ENV = {
    "R1": Relation(S1, [(1, "x"), (2, "y"), (3, "z")]),
    "R2": Relation(S2, [(1, "p"), (2, "q"), (3, "p")]),
}


def optimize(query):
    return push_down_selections(sql.parse(query), SCHEMAS)


def leaves_of(tree):
    return {leaf.relation_name: leaf for leaf in tree.leaves()}


class TestPushing:
    def test_left_only_condition(self):
        tree = optimize("select * from R1 natural join R2 where a = 'x'")
        leaves = leaves_of(tree)
        assert leaves["R1"].condition is not None
        assert leaves["R2"].condition is None
        assert isinstance(tree, algebra.Join)  # the Select disappeared

    def test_right_only_condition(self):
        tree = optimize("select * from R1 natural join R2 where b = 'p'")
        leaves = leaves_of(tree)
        assert leaves["R1"].condition is None
        assert leaves["R2"].condition is not None

    def test_join_attribute_pushed_both_sides(self):
        tree = optimize("select * from R1 natural join R2 where k > 1")
        leaves = leaves_of(tree)
        assert leaves["R1"].condition is not None
        assert leaves["R2"].condition is not None

    def test_mixed_conjunction_splits(self):
        tree = optimize(
            "select * from R1 natural join R2 where a = 'x' and b = 'p' and k > 0"
        )
        leaves = leaves_of(tree)
        assert "a = 'x'" in str(leaves["R1"].condition)
        assert "k > 0" in str(leaves["R1"].condition)
        assert "b = 'p'" in str(leaves["R2"].condition)
        assert isinstance(tree, algebra.Join)

    def test_disjunction_across_sides_stays_residual(self):
        tree = optimize(
            "select * from R1 natural join R2 where a = 'x' or b = 'p'"
        )
        # The OR references both sides: nothing can be pushed.
        assert isinstance(tree, algebra.Select)
        leaves = leaves_of(tree)
        assert leaves["R1"].condition is None
        assert leaves["R2"].condition is None

    def test_partial_residual(self):
        tree = optimize(
            "select * from R1 natural join R2 "
            "where a = 'x' and (a = 'z' or b = 'p')"
        )
        assert isinstance(tree, algebra.Select)  # the OR stays above
        assert leaves_of(tree)["R1"].condition is not None

    def test_projection_preserved_above(self):
        tree = optimize(
            "select k from R1 natural join R2 where a = 'x'"
        )
        assert isinstance(tree, algebra.Project)
        assert isinstance(tree.child, algebra.Join)

    def test_no_where_untouched(self):
        tree = optimize("select * from R1 natural join R2")
        assert isinstance(tree, algebra.Join)
        assert all(leaf.condition is None for leaf in tree.leaves())


class TestSemanticsPreserved:
    @pytest.mark.parametrize(
        "query",
        [
            "select * from R1 natural join R2 where a = 'x'",
            "select * from R1 natural join R2 where b = 'p'",
            "select * from R1 natural join R2 where k > 1",
            "select * from R1 natural join R2 where a != 'x' and b = 'p'",
            "select * from R1 natural join R2 where a = 'x' or b = 'p'",
            "select k, b from R1 natural join R2 where k >= 2",
        ],
    )
    def test_optimized_tree_same_result(self, query):
        original = sql.parse(query)
        optimized = push_down_selections(original, SCHEMAS)
        assert optimized.evaluate(ENV) == original.evaluate(ENV)

    def test_unknown_schema_untouched(self):
        tree = sql.parse("select * from X natural join Y where k = 1")
        assert push_down_selections(tree, SCHEMAS) is tree


class TestEndToEnd:
    QUERY = "select * from R1 natural join R2 where r1_p0 != 'zzzz'"

    @pytest.mark.parametrize("protocol", ["das", "commutative", "private-matching"])
    def test_push_down_through_protocols(
        self, ca, client, workload, protocol
    ):
        from repro import Federation, reference_join, run_join_query
        from repro.mediation.access_control import allow_all

        def build(push_down):
            federation = Federation(ca=ca)
            federation.mediator.push_down = push_down
            federation.add_source("S1", [(workload.relation_1, allow_all())])
            federation.add_source("S2", [(workload.relation_2, allow_all())])
            federation.attach_client(client)
            return federation

        expected = reference_join(build(False), self.QUERY)
        plain = run_join_query(build(False), self.QUERY, protocol=protocol)
        pushed = run_join_query(build(True), self.QUERY, protocol=protocol)
        assert plain.global_result == expected
        assert pushed.global_result == expected

    def test_push_down_reduces_traffic(self, ca, client, workload):
        from repro import Federation, run_join_query
        from repro.mediation.access_control import allow_all

        # A highly selective pushable condition on R1's join attribute.
        cutoff = sorted(workload.relation_1.active_domain("k"))[3]
        query = f"select * from R1 natural join R2 where k <= {cutoff}"

        def build(push_down):
            federation = Federation(ca=ca)
            federation.mediator.push_down = push_down
            federation.add_source("S1", [(workload.relation_1, allow_all())])
            federation.add_source("S2", [(workload.relation_2, allow_all())])
            federation.attach_client(client)
            return federation

        plain = run_join_query(build(False), query, protocol="commutative")
        pushed = run_join_query(build(True), query, protocol="commutative")
        assert pushed.global_result == plain.global_result
        assert pushed.total_bytes() < plain.total_bytes()
