"""Tests for the synthetic workload generator."""

import pytest

from repro.errors import ParameterError
from repro.relational.algebra import natural_join
from repro.relational.datagen import (
    WorkloadSpec,
    generate,
    medical_workload,
    small_workload,
)
from repro.relational.schema import AttributeType


class TestSpecValidation:
    def test_overlap_bounded(self):
        with pytest.raises(ParameterError):
            WorkloadSpec(domain_1=5, domain_2=5, overlap=6)


class TestGeneration:
    @pytest.fixture(scope="class")
    def workload(self):
        return generate(
            WorkloadSpec(
                domain_1=10,
                domain_2=8,
                overlap=4,
                rows_per_value_1=2,
                rows_per_value_2=3,
                seed=5,
            )
        )

    def test_domain_sizes(self, workload):
        spec = workload.spec
        assert len(workload.relation_1.active_domain(spec.join_attribute)) == 10
        assert len(workload.relation_2.active_domain(spec.join_attribute)) == 8

    def test_overlap_exact(self, workload):
        spec = workload.spec
        dom_1 = set(workload.relation_1.active_domain(spec.join_attribute))
        dom_2 = set(workload.relation_2.active_domain(spec.join_attribute))
        assert len(dom_1 & dom_2) == 4
        assert set(workload.shared_values) == dom_1 & dom_2

    def test_multiplicities(self, workload):
        groups = workload.relation_1.group_by(workload.spec.join_attribute)
        assert all(len(rows) == 2 for rows in groups.values())

    def test_expected_join_size_matches_reference(self, workload):
        joined = natural_join(workload.relation_1, workload.relation_2)
        assert len(joined) == workload.expected_join_size
        assert workload.expected_join_size == 4 * 2 * 3

    def test_reproducible(self):
        spec = WorkloadSpec(seed=123)
        w1, w2 = generate(spec), generate(spec)
        assert w1.relation_1 == w2.relation_1
        assert w1.relation_2 == w2.relation_2

    def test_seeds_differ(self):
        assert generate(WorkloadSpec(seed=1)).relation_1 != (
            generate(WorkloadSpec(seed=2)).relation_1
        )

    def test_string_domain(self):
        workload = generate(
            WorkloadSpec(join_type=AttributeType.STRING, overlap=3, seed=2)
        )
        values = workload.relation_1.active_domain("k")
        assert all(isinstance(v, str) for v in values)

    def test_skew_produces_varied_multiplicities(self):
        workload = generate(
            WorkloadSpec(
                domain_1=10, domain_2=10, overlap=0,
                rows_per_value_1=3, skew=1.5, seed=4,
            )
        )
        sizes = {
            len(rows)
            for rows in workload.relation_1.group_by("k").values()
        }
        assert len(sizes) > 1  # not all equal: the Zipf decay bit

    def test_zero_overlap_join_is_empty(self):
        workload = generate(
            WorkloadSpec(domain_1=5, domain_2=5, overlap=0, seed=8)
        )
        assert workload.expected_join_size == 0
        assert len(natural_join(workload.relation_1, workload.relation_2)) == 0


class TestPresets:
    def test_small_workload(self):
        workload = small_workload()
        assert workload.expected_join_size > 0

    def test_medical_workload_shape(self):
        workload = medical_workload()
        assert workload.spec.join_attribute == "patient"
        assert workload.relation_1.name == "clinic"
        assert workload.relation_2.name == "lab"
        assert workload.expected_join_size > 0
