"""Tests for the relational algebra operators and trees."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import QueryError, SchemaError
from repro.relational import algebra
from repro.relational.conditions import (
    AttributeComparison,
    Comparison,
    TrueCondition,
)
from repro.relational.relation import Relation
from repro.relational.schema import schema

S1 = schema("R1", k="int", a="string")
S2 = schema("R2", k="int", b="string")

R1 = Relation(S1, [(1, "x"), (2, "y"), (3, "z"), (3, "w")])
R2 = Relation(S2, [(2, "p"), (3, "q"), (4, "r")])


class TestSelect:
    def test_basic(self):
        out = algebra.select(R1, Comparison("k", ">", 1))
        assert set(out.rows) == {(2, "y"), (3, "z"), (3, "w")}

    def test_true_selects_all(self):
        assert algebra.select(R1, TrueCondition()) == R1

    def test_qualified_attribute(self):
        out = algebra.select(R1, Comparison("R1.k", "=", 2))
        assert set(out.rows) == {(2, "y")}


class TestProject:
    def test_basic(self):
        out = algebra.project(R1, ["k"])
        assert set(out.rows) == {(1,), (2,), (3,)}  # duplicates collapse

    def test_reorder(self):
        out = algebra.project(R1, ["a", "k"])
        assert (2, "y") not in out.rows
        assert ("y", 2) in out.rows

    def test_unknown_attribute(self):
        with pytest.raises(SchemaError):
            algebra.project(R1, ["missing"])


class TestProduct:
    def test_cardinality(self):
        out = algebra.product(R1, R2)
        assert len(out) == len(R1) * len(R2)

    def test_collision_prefixing(self):
        out = algebra.product(R1, R2)
        assert "R2_k" in out.schema.names()

    def test_select_product_equals_filtered_product(self):
        cond = AttributeComparison("R1.k", "=", "R2.k")
        fused = algebra.select_product(R1, R2, cond)
        assert len(fused) == 3  # k=2 (1 pair), k=3 (2x1 pairs)

    def test_select_product_ambiguous_bare_name(self):
        with pytest.raises(QueryError):
            algebra.select_product(R1, R2, Comparison("k", "=", 2))

    def test_select_product_bare_unique_name(self):
        out = algebra.select_product(R1, R2, Comparison("a", "=", "y"))
        assert len(out) == len(R2)

    def test_select_product_unknown_qualifier(self):
        with pytest.raises(QueryError):
            algebra.select_product(R1, R2, Comparison("R9.k", "=", 1))


class TestNaturalJoin:
    def test_basic(self):
        out = algebra.natural_join(R1, R2)
        assert set(out.rows) == {
            (2, "y", "p"),
            (3, "z", "q"),
            (3, "w", "q"),
        }

    def test_schema(self):
        out = algebra.natural_join(R1, R2)
        assert out.schema.names() == ("k", "a", "b")

    def test_no_common_attributes_degenerates_to_product(self):
        other = Relation(schema("R3", c="string"), [("m",), ("n",)])
        out = algebra.natural_join(R1, other)
        assert len(out) == len(R1) * 2

    def test_empty_side(self):
        empty = Relation(S2, [])
        assert len(algebra.natural_join(R1, empty)) == 0

    def test_join_equals_select_product_then_project(self):
        # The textbook identity behind the DAS client query.
        cond = AttributeComparison("R1.k", "=", "R2.k")
        fused = algebra.select_product(R1, R2, cond)
        projected = algebra.project(fused, ["k", "a", "b"])
        assert projected == algebra.natural_join(R1, R2)


class TestSetOperations:
    S = schema("X", k="int", v="string")
    A = Relation(S, [(1, "a"), (2, "b")])
    B = Relation(S.rename("Y"), [(2, "b"), (3, "c")])

    def test_union(self):
        assert len(algebra.union(self.A, self.B)) == 3

    def test_intersection(self):
        assert set(algebra.intersection(self.A, self.B).rows) == {(2, "b")}

    def test_difference(self):
        assert set(algebra.difference(self.A, self.B).rows) == {(1, "a")}

    def test_incompatible_schemas(self):
        mismatched = Relation(
            schema("Z", v="string", k="int"), [("a", 1)]
        )
        with pytest.raises(SchemaError):
            algebra.union(self.A, mismatched)


class TestTrees:
    ENV = {"R1": R1, "R2": R2}

    def test_partial_query_leaf(self):
        leaf = algebra.PartialQuery("R1")
        assert leaf.evaluate(self.ENV) == R1
        assert leaf.sql == "select * from R1"

    def test_partial_query_with_condition(self):
        leaf = algebra.PartialQuery("R1", Comparison("k", ">", 2))
        assert len(leaf.evaluate(self.ENV)) == 2
        assert "where" in leaf.sql

    def test_unbound_leaf(self):
        with pytest.raises(QueryError):
            algebra.PartialQuery("R9").evaluate(self.ENV)

    def test_join_tree(self):
        tree = algebra.Join(algebra.PartialQuery("R1"), algebra.PartialQuery("R2"))
        assert tree.evaluate(self.ENV) == algebra.natural_join(R1, R2)

    def test_select_project_tree(self):
        tree = algebra.Project(
            ("k", "b"),
            algebra.Select(
                Comparison("k", "=", 3),
                algebra.Join(
                    algebra.PartialQuery("R1"), algebra.PartialQuery("R2")
                ),
            ),
        )
        assert set(tree.evaluate(self.ENV).rows) == {(3, "q")}

    def test_leaves_in_order(self):
        tree = algebra.Join(algebra.PartialQuery("R1"), algebra.PartialQuery("R2"))
        assert [leaf.relation_name for leaf in tree.leaves()] == ["R1", "R2"]

    def test_describe_renders_tree(self):
        tree = algebra.Select(
            Comparison("k", "=", 3),
            algebra.Join(algebra.PartialQuery("R1"), algebra.PartialQuery("R2")),
        )
        text = tree.describe()
        assert "Select" in text and "Join" in text and "PartialQuery" in text

    def test_union_intersection_trees(self):
        env = {"A": self_a(), "B": self_b()}
        union_tree = algebra.Union(algebra.PartialQuery("A"), algebra.PartialQuery("B"))
        inter_tree = algebra.Intersection(
            algebra.PartialQuery("A"), algebra.PartialQuery("B")
        )
        assert len(union_tree.evaluate(env)) == 3
        assert len(inter_tree.evaluate(env)) == 1


def self_a():
    return TestSetOperations.A


def self_b():
    return TestSetOperations.B


@given(
    st.lists(st.tuples(st.integers(0, 10), st.text(max_size=3)), max_size=20),
    st.lists(st.tuples(st.integers(0, 10), st.text(max_size=3)), max_size=20),
)
@settings(max_examples=50, deadline=None)
def test_natural_join_matches_nested_loop(rows_1, rows_2):
    """The hash join must agree with the obvious nested-loop definition."""
    r1 = Relation(S1, rows_1)
    r2 = Relation(S2, rows_2)
    expected = {
        (k1, a, b)
        for (k1, a) in r1.rows
        for (k2, b) in r2.rows
        if k1 == k2
    }
    assert set(algebra.natural_join(r1, r2).rows) == expected
