"""Tests for the SQL2Algebra front end."""

import pytest

from repro.errors import QueryError
from repro.relational import algebra, sql
from repro.relational.relation import Relation
from repro.relational.schema import schema

S1 = schema("R1", k="int", a="string")
S2 = schema("R2", k="int", b="string")
ENV = {
    "R1": Relation(S1, [(1, "x"), (2, "y"), (3, "z")]),
    "R2": Relation(S2, [(2, "p"), (3, "q"), (4, "r")]),
}


class TestTokenizer:
    def test_basic(self):
        kinds = [t.kind for t in sql.tokenize("select * from R1")]
        assert kinds == ["keyword", "symbol", "keyword", "ident", "end"]

    def test_string_literal_with_escape(self):
        tokens = sql.tokenize("select * from R where a = 'it''s'")
        strings = [t for t in tokens if t.kind == "string"]
        assert strings[0].text == "'it''s'"

    def test_operators(self):
        tokens = sql.tokenize("a <= 1 and b >= 2 or c <> 3")
        symbols = [t.text for t in tokens if t.kind == "symbol"]
        assert symbols == ["<=", ">=", "<>"]

    def test_unknown_character(self):
        with pytest.raises(QueryError):
            sql.tokenize("select # from R")


class TestParser:
    def test_select_star(self):
        tree = sql.parse("select * from R1")
        assert isinstance(tree, algebra.PartialQuery)
        assert tree.evaluate(ENV) == ENV["R1"]

    def test_natural_join(self):
        tree = sql.parse("select * from R1 natural join R2")
        assert isinstance(tree, algebra.Join)
        assert len(tree.evaluate(ENV)) == 2

    def test_three_way_chain(self):
        tree = sql.parse("select * from R1 natural join R2 natural join R1")
        assert len(tree.leaves()) == 3

    def test_projection(self):
        tree = sql.parse("select k, b from R1 natural join R2")
        out = tree.evaluate(ENV)
        assert out.schema.names() == ("k", "b")

    def test_where_clause(self):
        tree = sql.parse("select * from R1 where k > 1 and a != 'z'")
        assert set(tree.evaluate(ENV).rows) == {(2, "y")}

    def test_where_or_not(self):
        tree = sql.parse("select * from R1 where k = 1 or not k < 3")
        assert set(tree.evaluate(ENV).rows) == {(1, "x"), (3, "z")}

    def test_parentheses(self):
        tree = sql.parse("select * from R1 where (k = 1 or k = 3) and a != 'x'")
        assert set(tree.evaluate(ENV).rows) == {(3, "z")}

    def test_string_literal(self):
        tree = sql.parse("select * from R1 where a = 'y'")
        assert set(tree.evaluate(ENV).rows) == {(2, "y")}

    def test_mirrored_literal_comparison(self):
        tree = sql.parse("select * from R1 where 2 < k")
        assert set(tree.evaluate(ENV).rows) == {(3, "z")}

    def test_join_on(self):
        tree = sql.parse("select * from R1 join R2 on R1.k = R2.k")
        assert len(tree.evaluate(ENV)) == 2

    def test_comma_product(self):
        tree = sql.parse("select * from R1, R2")
        assert len(tree.evaluate(ENV)) == 9

    def test_qualified_projection(self):
        tree = sql.parse("select R1.k from R1")
        assert tree.evaluate(ENV).schema.names() == ("k",)

    def test_case_insensitive_keywords(self):
        tree = sql.parse("SELECT * FROM R1 NATURAL JOIN R2 WHERE k = 2")
        assert len(tree.evaluate(ENV)) == 1


class TestParserErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "from R1",
            "select from R1",
            "select * R1",
            "select * from",
            "select * from R1 where",
            "select * from R1 where k =",
            "select * from R1 where 1 = 2",  # no attribute operand
            "select * from R1 natural R2",
            "select * from R1 join R2",  # missing ON
            "select * from R1 extra",
            "select * from R1 where (k = 1",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(QueryError):
            sql.parse(bad)


class TestPartialQueries:
    def test_leaves_returned(self):
        tree = sql.parse("select * from R1 natural join R2")
        leaves = sql.partial_queries(tree)
        assert [leaf.sql for leaf in leaves] == [
            "select * from R1",
            "select * from R2",
        ]
