"""Tests for domain partitioning and index tables."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PartitionError
from repro.relational.partition import (
    IndexTable,
    Partition,
    build_index_table,
    equi_depth,
    equi_width,
    singleton,
)


class TestPartition:
    def test_empty_rejected(self):
        with pytest.raises(PartitionError):
            Partition(frozenset())

    def test_bounds_validated(self):
        with pytest.raises(PartitionError):
            Partition(frozenset({5}), (6, 10))
        with pytest.raises(PartitionError):
            Partition(frozenset({5}), (10, 1))

    def test_value_overlap(self):
        a = Partition(frozenset({1, 2}))
        b = Partition(frozenset({2, 3}))
        c = Partition(frozenset({4}))
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_range_overlap(self):
        a = Partition(frozenset({1, 5}), (1, 5))
        b = Partition(frozenset({4}), (4, 8))
        c = Partition(frozenset({9}), (9, 12))
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_range_overlap_without_shared_actives(self):
        # The sound case: ranges intersect although the active values
        # differ - the *other* source may hold values in the gap.
        a = Partition(frozenset({1, 10}), (1, 10))
        b = Partition(frozenset({5}), (5, 6))
        assert a.overlaps(b)
        assert not (a.values & b.values)

    def test_descriptor_stability(self):
        a = Partition(frozenset({"x", "y"}))
        b = Partition(frozenset({"y", "x"}))
        assert a.descriptor() == b.descriptor()


class TestStrategies:
    def test_equi_width_covers_domain(self):
        domain = [1, 5, 9, 13, 22, 40]
        partitions = equi_width(domain, 3)
        covered = set().union(*(p.values for p in partitions))
        assert covered == set(domain)
        assert all(p.bounds is not None for p in partitions)

    def test_equi_width_disjoint(self):
        partitions = equi_width(range(100), 7)
        seen = set()
        for p in partitions:
            assert not (p.values & seen)
            seen |= p.values

    def test_equi_width_single_bucket(self):
        partitions = equi_width([3, 7, 11], 1)
        assert len(partitions) == 1
        assert partitions[0].bounds == (3, 11)

    def test_equi_width_requires_ints(self):
        with pytest.raises(PartitionError):
            equi_width(["a", "b"], 2)

    def test_equi_width_empty_domain(self):
        assert equi_width([], 3) == []

    def test_equi_depth_balanced(self):
        partitions = equi_depth(list(range(12)), 4)
        assert len(partitions) == 4
        assert all(len(p.values) == 3 for p in partitions)

    def test_equi_depth_strings(self):
        partitions = equi_depth(["a", "b", "c", "d", "e"], 2)
        covered = set().union(*(p.values for p in partitions))
        assert covered == {"a", "b", "c", "d", "e"}

    def test_equi_depth_more_buckets_than_values(self):
        partitions = equi_depth([1, 2], 10)
        assert len(partitions) == 2

    def test_singleton(self):
        partitions = singleton([3, 1, 2])
        assert len(partitions) == 3
        assert all(len(p.values) == 1 for p in partitions)

    def test_zero_buckets_rejected(self):
        with pytest.raises(PartitionError):
            equi_width([1], 0)
        with pytest.raises(PartitionError):
            equi_depth([1], 0)

    @given(
        st.sets(st.integers(0, 1000), min_size=1, max_size=60),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_strategies_partition_domain(self, domain, buckets):
        for strategy in (
            lambda: equi_width(domain, buckets),
            lambda: equi_depth(domain, buckets),
            lambda: singleton(domain),
        ):
            partitions = strategy()
            covered = [v for p in partitions for v in p.values]
            assert sorted(covered) == sorted(domain)  # no gaps, no dups


class TestIndexTable:
    @pytest.fixture
    def table(self):
        return build_index_table(
            "R1.k", equi_depth([1, 2, 3, 4, 5, 6], 3), salt=b"fixed-salt"
        )

    def test_index_of(self, table):
        for value in (1, 4, 6):
            index = table.index_of(value)
            assert value in table.partition_of_index(index).values

    def test_index_of_uncovered(self, table):
        with pytest.raises(PartitionError):
            table.index_of(99)

    def test_unknown_index(self, table):
        with pytest.raises(PartitionError):
            table.partition_of_index(0)

    def test_unique_index_values(self, table):
        indexes = [index for _, index in table.entries]
        assert len(set(indexes)) == len(indexes)

    def test_salts_decorrelate_tables(self):
        partitions = equi_depth([1, 2, 3, 4], 2)
        t1 = build_index_table("R.k", partitions, salt=b"salt-1")
        t2 = build_index_table("R.k", partitions, salt=b"salt-2")
        assert {i for _, i in t1.entries} != {i for _, i in t2.entries}

    def test_covered_values(self, table):
        assert table.covered_values() == frozenset({1, 2, 3, 4, 5, 6})

    def test_overlapping_pairs(self):
        t1 = build_index_table("R1.k", equi_depth([1, 2, 3, 4], 2), salt=b"a")
        t2 = build_index_table("R2.k", equi_depth([3, 4, 5, 6], 2), salt=b"b")
        pairs = t1.overlapping_pairs(t2)
        # {3,4} of t1 overlaps {3,4} of t2 only.
        assert len(pairs) == 1
        index_1, index_2 = pairs[0]
        assert table_values(t1, index_1) == frozenset({3, 4})
        assert table_values(t2, index_2) == frozenset({3, 4})

    def test_no_overlap(self):
        t1 = build_index_table("R1.k", singleton([1, 2]), salt=b"a")
        t2 = build_index_table("R2.k", singleton([8, 9]), salt=b"b")
        assert t1.overlapping_pairs(t2) == []

    def test_serialization_round_trip(self, table):
        restored = IndexTable.from_bytes(table.to_bytes())
        assert restored.attribute == table.attribute
        assert [i for _, i in restored.entries] == [i for _, i in table.entries]
        assert restored.covered_values() == table.covered_values()

    def test_serialization_with_bounds_and_strings(self):
        table = build_index_table(
            "R.name", equi_depth(["ada", "bob", "eve"], 2), salt=b"s"
        )
        restored = IndexTable.from_bytes(table.to_bytes())
        assert restored.covered_values() == frozenset({"ada", "bob", "eve"})

    def test_duplicate_index_values_rejected(self):
        p1, p2 = Partition(frozenset({1})), Partition(frozenset({2}))
        with pytest.raises(PartitionError):
            IndexTable("R.k", ((p1, 7), (p2, 7)))

    def test_overlapping_partitions_rejected(self):
        p1, p2 = Partition(frozenset({1, 2})), Partition(frozenset({2, 3}))
        with pytest.raises(PartitionError):
            IndexTable("R.k", ((p1, 1), (p2, 2)))


def table_values(table, index):
    return table.partition_of_index(index).values
