"""Tests for schemas, attributes and name resolution."""

import pytest

from repro.errors import SchemaError
from repro.relational.schema import Attribute, AttributeType, Schema, schema


class TestAttributeType:
    def test_inference(self):
        assert AttributeType.of(5) is AttributeType.INT
        assert AttributeType.of("x") is AttributeType.STRING
        assert AttributeType.of(True) is AttributeType.BOOL

    def test_bool_not_int(self):
        # bool is a subclass of int in Python; the model keeps them apart.
        assert AttributeType.of(True) is not AttributeType.INT

    def test_unsupported(self):
        with pytest.raises(SchemaError):
            AttributeType.of(3.14)


class TestAttribute:
    def test_accepts(self):
        a = Attribute("age", AttributeType.INT)
        assert a.accepts(30)
        assert not a.accepts("thirty")
        assert not a.accepts(True)

    def test_invalid_names(self):
        with pytest.raises(SchemaError):
            Attribute("")
        with pytest.raises(SchemaError):
            Attribute("a.b")


class TestSchema:
    @pytest.fixture
    def s(self):
        return schema("R1", k="int", name="string", flag="bool")

    def test_helper_builds_types(self, s):
        assert s.attribute("k").type is AttributeType.INT
        assert s.attribute("name").type is AttributeType.STRING
        assert s.attribute("flag").type is AttributeType.BOOL

    def test_position_lookup(self, s):
        assert s.position("k") == 0
        assert s.position("flag") == 2

    def test_qualified_resolution(self, s):
        assert s.position("R1.name") == 1
        assert s.resolve("R1.k") == "k"

    def test_wrong_qualifier_rejected(self, s):
        with pytest.raises(SchemaError):
            s.position("R2.k")

    def test_unknown_attribute_rejected(self, s):
        with pytest.raises(SchemaError):
            s.position("missing")

    def test_has(self, s):
        assert s.has("k") and s.has("R1.k")
        assert not s.has("zzz") and not s.has("R2.k")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema("R", [Attribute("a"), Attribute("a")])

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Schema("R", [])
        with pytest.raises(SchemaError):
            Schema("", [Attribute("a")])

    def test_names(self, s):
        assert s.names() == ("k", "name", "flag")
        assert s.qualified_names() == ("R1.k", "R1.name", "R1.flag")

    def test_rename(self, s):
        renamed = s.rename("R9")
        assert renamed.relation_name == "R9"
        assert renamed.attributes == s.attributes

    def test_project(self, s):
        projected = s.project(["flag", "k"])
        assert projected.names() == ("flag", "k")

    def test_common_attributes(self, s):
        other = schema("R2", k="int", extra="string")
        assert s.common_attributes(other) == ("k",)
        assert other.common_attributes(s) == ("k",)

    def test_join_schema(self, s):
        other = schema("R2", k="int", extra="string")
        joined = s.join_schema(other, "J")
        assert joined.names() == ("k", "name", "flag", "extra")
        assert joined.relation_name == "J"

    def test_join_schema_type_clash(self, s):
        other = schema("R2", k="string")
        with pytest.raises(SchemaError):
            s.join_schema(other, "J")

    def test_equality_and_hash(self, s):
        same = schema("R1", k="int", name="string", flag="bool")
        assert s == same
        assert hash(s) == hash(same)
        assert s != s.rename("R2")

    def test_iteration_and_len(self, s):
        assert len(s) == 3
        assert [a.name for a in s] == ["k", "name", "flag"]
