"""Tests for canonical byte and integer encodings."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EncodingError
from repro.relational import encoding
from repro.relational.relation import Relation
from repro.relational.schema import schema

S = schema("R", k="int", name="string", flag="bool")

value_strategy = st.one_of(
    st.integers(min_value=-(10**9), max_value=10**9),
    st.text(max_size=30),
    st.booleans(),
)


class TestValueEncoding:
    def test_type_disambiguation(self):
        # 1 (int), "1" (string) and True (bool) must encode differently.
        encodings = {
            encoding.encode_value(1),
            encoding.encode_value("1"),
            encoding.encode_value(True),
        }
        assert len(encodings) == 3

    @given(value_strategy)
    def test_deterministic(self, value):
        assert encoding.encode_value(value) == encoding.encode_value(value)

    def test_unsupported(self):
        with pytest.raises(EncodingError):
            encoding.encode_value(3.5)


class TestRowEncoding:
    ROW = (42, "ada lovelace", True)

    def test_round_trip(self):
        assert encoding.decode_row(encoding.encode_row(self.ROW), S) == self.ROW

    @given(
        st.tuples(
            st.integers(min_value=-(10**6), max_value=10**6),
            st.text(max_size=50),
            st.booleans(),
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_round_trip_property(self, row):
        assert encoding.decode_row(encoding.encode_row(row), S) == row

    def test_truncated_rejected(self):
        data = encoding.encode_row(self.ROW)
        with pytest.raises(EncodingError):
            encoding.decode_row(data[:-1], S)

    def test_trailing_bytes_rejected(self):
        data = encoding.encode_row(self.ROW) + b"x"
        with pytest.raises(EncodingError):
            encoding.decode_row(data, S)

    def test_type_mismatch_rejected(self):
        # Encode under a different column order, decode under S.
        data = encoding.encode_row(("ada", 42, True))
        with pytest.raises(EncodingError):
            encoding.decode_row(data, S)

    def test_injective_on_sample(self):
        rows = [(i, f"s{i}", i % 2 == 0) for i in range(100)]
        encoded = {encoding.encode_row(row) for row in rows}
        assert len(encoded) == 100


class TestRowsEncoding:
    def test_round_trip(self):
        rows = ((1, "a", True), (2, "b", False))
        assert encoding.decode_rows(encoding.encode_rows(rows), S) == rows

    def test_empty(self):
        assert encoding.decode_rows(encoding.encode_rows(()), S) == ()

    def test_truncated(self):
        data = encoding.encode_rows(((1, "a", True),))
        with pytest.raises(EncodingError):
            encoding.decode_rows(data[:-2], S)

    def test_too_short(self):
        with pytest.raises(EncodingError):
            encoding.decode_rows(b"\x00", S)


class TestRelationEncoding:
    def test_round_trip(self):
        r = Relation(S, [(1, "a", True), (2, "b", False)])
        restored = encoding.decode_relation(encoding.encode_relation(r))
        assert restored == r
        assert restored.schema == r.schema

    def test_empty_relation(self):
        r = Relation(S, [])
        assert encoding.decode_relation(encoding.encode_relation(r)) == r

    def test_truncated(self):
        with pytest.raises(EncodingError):
            encoding.decode_relation(b"\x00\x00")


class TestIntEncoding:
    @pytest.mark.parametrize(
        "value", [0, 1, 255, 10**12, "", "a", "héllo wörld", True, False]
    )
    def test_round_trip(self, value):
        assert encoding.int_to_value(encoding.value_to_int(value)) == value

    @given(value_strategy)
    @settings(max_examples=100, deadline=None)
    def test_round_trip_property(self, value):
        if isinstance(value, int) and not isinstance(value, bool) and value < 0:
            with pytest.raises(EncodingError):
                encoding.value_to_int(value)
            return
        if isinstance(value, str) and len(value.encode("utf-8")) > 64:
            # max_size=30 characters can exceed the 64-*byte* bound in
            # UTF-8; the encoder must refuse rather than truncate.
            with pytest.raises(EncodingError):
                encoding.value_to_int(value)
            return
        assert encoding.int_to_value(encoding.value_to_int(value)) == value

    def test_injective_across_types(self):
        values = [0, 1, "0", "1", True, False, "", 256]
        encoded = {encoding.value_to_int(v) for v in values}
        assert len(encoded) == len(values)

    def test_size_bound(self):
        with pytest.raises(EncodingError):
            encoding.value_to_int("x" * 100, max_bytes=10)

    def test_unknown_tag(self):
        with pytest.raises(EncodingError):
            encoding.int_to_value(0xFF)

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            encoding.int_to_value(-1)
