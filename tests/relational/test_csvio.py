"""Tests for CSV import/export of relations."""

import pytest

from repro.errors import SchemaError
from repro.relational import csvio
from repro.relational.relation import Relation
from repro.relational.schema import AttributeType, schema

S = schema("R", patient="string", age="int", insured="bool")
R = Relation(
    S,
    [
        ("ada", 36, True),
        ("grace", 85, False),
        ("a,b", 1, True),  # embedded comma exercises quoting
    ],
)


class TestRoundTrip:
    def test_dumps_loads(self):
        restored = csvio.loads("R", csvio.dumps(R))
        assert restored == R
        assert restored.schema == R.schema

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "r.csv"
        csvio.dump(R, path)
        assert csvio.load("R", path) == R

    def test_typed_header_written(self):
        text = csvio.dumps(R)
        assert text.splitlines()[0] == "patient:string,age:int,insured:bool"

    def test_empty_relation(self):
        empty = Relation(S, [])
        assert csvio.loads("R", csvio.dumps(empty)) == empty


class TestTypedParsing:
    def test_explicit_types(self):
        relation = csvio.loads("T", "name:string,n:int\n007,42\n")
        assert relation.rows == (("007", 42),)
        assert relation.schema.attribute("name").type is AttributeType.STRING

    def test_bool_parsing(self):
        relation = csvio.loads("T", "flag:bool\nTRUE\nfalse\n")
        assert set(relation.rows) == {(True,), (False,)}

    def test_bad_int(self):
        with pytest.raises(SchemaError):
            csvio.loads("T", "n:int\nnope\n")

    def test_bad_bool(self):
        with pytest.raises(SchemaError):
            csvio.loads("T", "b:bool\nmaybe\n")

    def test_unknown_type(self):
        with pytest.raises(SchemaError):
            csvio.loads("T", "x:float\n1.5\n")


class TestInference:
    def test_int_column(self):
        relation = csvio.loads("T", "a,b\n1,x\n2,y\n")
        assert relation.schema.attribute("a").type is AttributeType.INT
        assert relation.schema.attribute("b").type is AttributeType.STRING

    def test_bool_column(self):
        relation = csvio.loads("T", "f\ntrue\nfalse\n")
        assert relation.schema.attribute("f").type is AttributeType.BOOL

    def test_mixed_column_is_string(self):
        relation = csvio.loads("T", "a\n1\nx\n")
        assert relation.schema.attribute("a").type is AttributeType.STRING

    def test_empty_body_defaults_string(self):
        relation = csvio.loads("T", "a\n")
        assert relation.schema.attribute("a").type is AttributeType.STRING
        assert len(relation) == 0


class TestErrors:
    def test_no_header(self):
        with pytest.raises(SchemaError):
            csvio.loads("T", "")

    def test_ragged_rows(self):
        with pytest.raises(SchemaError):
            csvio.loads("T", "a,b\n1\n")
