"""Tests for the condition AST."""

import pytest

from repro.errors import QueryError
from repro.relational.conditions import (
    And,
    AttributeComparison,
    Comparison,
    FalseCondition,
    Not,
    Or,
    TrueCondition,
    conjunction,
    disjunction,
)

ROW = {"k": 5, "name": "ada", "other_k": 5}


def resolve(attribute):
    return ROW[attribute]


class TestComparison:
    @pytest.mark.parametrize(
        "op,value,expected",
        [
            ("=", 5, True),
            ("=", 6, False),
            ("!=", 6, True),
            ("<", 6, True),
            ("<=", 5, True),
            (">", 4, True),
            (">=", 6, False),
        ],
    )
    def test_operators(self, op, value, expected):
        assert Comparison("k", op, value).evaluate(resolve) is expected

    def test_string_comparison(self):
        assert Comparison("name", "=", "ada").evaluate(resolve)

    def test_unknown_operator(self):
        with pytest.raises(QueryError):
            Comparison("k", "~", 5)

    def test_attributes(self):
        assert Comparison("k", "=", 5).attributes() == frozenset({"k"})


class TestAttributeComparison:
    def test_equality(self):
        assert AttributeComparison("k", "=", "other_k").evaluate(resolve)

    def test_inequality(self):
        assert not AttributeComparison("k", "!=", "other_k").evaluate(resolve)

    def test_attributes(self):
        cond = AttributeComparison("a", "=", "b")
        assert cond.attributes() == frozenset({"a", "b"})

    def test_unknown_operator(self):
        with pytest.raises(QueryError):
            AttributeComparison("a", "?", "b")


class TestCombinators:
    def test_and(self):
        cond = Comparison("k", "=", 5) & Comparison("name", "=", "ada")
        assert cond.evaluate(resolve)

    def test_and_short(self):
        cond = Comparison("k", "=", 5) & Comparison("name", "=", "x")
        assert not cond.evaluate(resolve)

    def test_or(self):
        cond = Comparison("k", "=", 99) | Comparison("name", "=", "ada")
        assert cond.evaluate(resolve)

    def test_not(self):
        assert (~Comparison("k", "=", 99)).evaluate(resolve)

    def test_nested_attributes(self):
        cond = (Comparison("k", "=", 1) | Comparison("name", "=", "x")) & Not(
            Comparison("other_k", ">", 0)
        )
        assert cond.attributes() == frozenset({"k", "name", "other_k"})


class TestIdentities:
    def test_true_false(self):
        assert TrueCondition().evaluate(resolve)
        assert not FalseCondition().evaluate(resolve)

    def test_empty_conjunction_is_true(self):
        assert isinstance(conjunction([]), TrueCondition)

    def test_empty_disjunction_is_false(self):
        # Cond_S with no overlapping partitions selects nothing.
        assert isinstance(disjunction([]), FalseCondition)

    def test_singleton_collapses(self):
        leaf = Comparison("k", "=", 5)
        assert conjunction([leaf]) is leaf
        assert disjunction([leaf]) is leaf

    def test_multi_builds_nodes(self):
        leaves = [Comparison("k", "=", 5), Comparison("k", "=", 6)]
        assert isinstance(conjunction(leaves), And)
        assert isinstance(disjunction(leaves), Or)


class TestRendering:
    def test_str_forms(self):
        cond = (Comparison("k", "=", 5) & AttributeComparison("a", "=", "b")) | Not(
            FalseCondition()
        )
        text = str(cond)
        assert "AND" in text and "OR" in text and "NOT" in text
        assert "k = 5" in text
