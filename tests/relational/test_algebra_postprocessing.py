"""Tests for evaluate_above_join (client-side query post-processing)."""

import pytest

from repro.errors import QueryError
from repro.relational import algebra, sql
from repro.relational.algebra import evaluate_above_join, natural_join
from repro.relational.relation import Relation
from repro.relational.schema import schema

S1 = schema("R1", k="int", a="string")
S2 = schema("R2", k="int", b="string")
R1 = Relation(S1, [(1, "x"), (2, "y"), (3, "z")])
R2 = Relation(S2, [(1, "p"), (2, "q"), (3, "r")])
JOINED = natural_join(R1, R2)


class TestEvaluateAboveJoin:
    def test_bare_join_is_identity(self):
        tree = sql.parse("select * from R1 natural join R2")
        assert evaluate_above_join(tree, JOINED) == JOINED

    def test_selection_applied(self):
        tree = sql.parse("select * from R1 natural join R2 where k > 1")
        out = evaluate_above_join(tree, JOINED)
        assert {row[0] for row in out} == {2, 3}

    def test_projection_applied(self):
        tree = sql.parse("select b, k from R1 natural join R2")
        out = evaluate_above_join(tree, JOINED)
        assert out.schema.names() == ("b", "k")

    def test_select_then_project(self):
        tree = sql.parse(
            "select a from R1 natural join R2 where b = 'q'"
        )
        out = evaluate_above_join(tree, JOINED)
        assert out.rows == (("y",),)

    def test_matches_full_tree_evaluation(self):
        env = {"R1": R1, "R2": R2}
        for query in (
            "select * from R1 natural join R2 where k != 2",
            "select k from R1 natural join R2",
            "select a, b from R1 natural join R2 where k >= 2 and a != 'z'",
        ):
            tree = sql.parse(query)
            assert evaluate_above_join(tree, JOINED) == tree.evaluate(env)

    def test_unsupported_operator_rejected(self):
        tree = algebra.Union(
            algebra.Join(algebra.PartialQuery("R1"), algebra.PartialQuery("R2")),
            algebra.PartialQuery("R3"),
        )
        with pytest.raises(QueryError):
            evaluate_above_join(tree, JOINED)
