"""Tests for global-result assembly from matched tuple sets."""

import pytest

from repro.core.assembly import combine_tuple_sets, result_schema
from repro.errors import ProtocolError
from repro.relational.algebra import natural_join
from repro.relational.relation import Relation
from repro.relational.schema import schema

S1 = schema("R1", k="int", a="string")
S2 = schema("R2", k="int", b="string")


class TestResultSchema:
    def test_names(self):
        joined = result_schema(S1, S2)
        assert joined.names() == ("k", "a", "b")
        assert joined.relation_name == "R1_join_R2"

    def test_custom_name(self):
        assert result_schema(S1, S2, "X").relation_name == "X"


class TestCombine:
    def test_cross_product_per_key(self):
        matched = [
            ((1,), ((1, "a1"), (1, "a2")), ((1, "b1"),)),
            ((2,), ((2, "a3"),), ((2, "b2"), (2, "b3"))),
        ]
        out = combine_tuple_sets(S1, S2, ("k",), matched)
        assert len(out) == 2 + 2
        assert (1, "a1", "b1") in out and (2, "a3", "b3") in out

    def test_empty_match_list(self):
        out = combine_tuple_sets(S1, S2, ("k",), [])
        assert len(out) == 0
        assert out.schema.names() == ("k", "a", "b")

    def test_matches_reference_join(self):
        r1 = Relation(S1, [(1, "x"), (1, "y"), (2, "z")])
        r2 = Relation(S2, [(1, "p"), (3, "q")])
        matched = [((1,), tuple(r1.tuples_with("k", 1)), tuple(r2.tuples_with("k", 1)))]
        out = combine_tuple_sets(S1, S2, ("k",), matched)
        assert out == natural_join(r1, r2)

    def test_key_mismatch_fails_closed(self):
        # A forged tuple set whose rows do not carry the claimed key must
        # be rejected, not silently joined.
        matched = [((1,), ((2, "forged"),), ((1, "b"),))]
        with pytest.raises(ProtocolError):
            combine_tuple_sets(S1, S2, ("k",), matched)

    def test_composite_keys(self):
        sa = schema("A", k="int", t="string", a="string")
        sb = schema("B", k="int", t="string", b="string")
        matched = [((1, "x"), ((1, "x", "pa"),), ((1, "x", "pb"),))]
        out = combine_tuple_sets(sa, sb, ("k", "t"), matched)
        assert out.rows == ((1, "x", "pa", "pb"),)
