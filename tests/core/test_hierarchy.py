"""Tests for successive joins / mediator hierarchies (Section 8)."""

import pytest

from repro import CertificationAuthority, Federation, setup_client
from repro.core.hierarchy import chain_relations, run_successive_joins
from repro.errors import QueryError
from repro.mediation.access_control import allow_all
from repro.relational.algebra import natural_join
from repro.relational.relation import Relation
from repro.relational.schema import schema


@pytest.fixture(scope="module")
def three_relations():
    r1 = Relation(
        schema("R1", k="int", a="string"),
        [(1, "a1"), (2, "a2"), (3, "a3")],
    )
    r2 = Relation(
        schema("R2", k="int", b="string"),
        [(1, "b1"), (2, "b2"), (4, "b4")],
    )
    r3 = Relation(
        schema("R3", k="int", c="string"),
        [(1, "c1"), (2, "c2"), (2, "c2b")],
    )
    return r1, r2, r3


@pytest.fixture
def hierarchy_federation(ca, client, three_relations):
    r1, r2, r3 = three_relations
    federation = Federation(ca=ca)
    federation.add_source("S1", [(r1, allow_all())])
    federation.add_source("S2", [(r2, allow_all())])
    federation.add_source("S3", [(r3, allow_all())])
    federation.attach_client(client)
    return federation


class TestChainParsing:
    def test_two_relations(self):
        assert chain_relations("select * from A natural join B") == ["A", "B"]

    def test_three_relations(self):
        query = "select * from A natural join B natural join C"
        assert chain_relations(query) == ["A", "B", "C"]

    def test_single_relation_rejected(self):
        with pytest.raises(QueryError):
            chain_relations("select * from A")


class TestSuccessiveJoins:
    QUERY = "select * from R1 natural join R2 natural join R3"

    @pytest.mark.parametrize("protocol", ["commutative", "das", "private-matching"])
    def test_matches_reference(
        self, hierarchy_federation, three_relations, protocol
    ):
        r1, r2, r3 = three_relations
        expected = natural_join(natural_join(r1, r2), r3)
        assert len(expected) == 3  # k=1 once, k=2 twice
        outcome = run_successive_joins(
            hierarchy_federation, self.QUERY, protocol=protocol
        )
        assert outcome.global_result == expected
        assert len(outcome.stages) == 2

    def test_two_relation_chain_is_single_stage(self, hierarchy_federation):
        outcome = run_successive_joins(
            hierarchy_federation,
            "select * from R1 natural join R2",
            protocol="commutative",
        )
        assert len(outcome.stages) == 1

    def test_stage_transcripts_independent(self, hierarchy_federation):
        outcome = run_successive_joins(
            hierarchy_federation, self.QUERY, protocol="commutative"
        )
        assert outcome.stages[0].network is not outcome.stages[1].network
        assert outcome.total_bytes() == sum(
            stage.total_bytes() for stage in outcome.stages
        )
        assert outcome.total_seconds() >= 0

    def test_second_stage_has_delegate_source(self, hierarchy_federation):
        outcome = run_successive_joins(
            hierarchy_federation, self.QUERY, protocol="commutative"
        )
        second = outcome.stages[1]
        parties = set(second.network.parties())
        assert any(p.startswith("lower-mediator") for p in parties)

    def test_unknown_relation_rejected(self, hierarchy_federation):
        with pytest.raises(QueryError):
            run_successive_joins(
                hierarchy_federation,
                "select * from R1 natural join R2 natural join R9",
                protocol="commutative",
            )

    def test_four_relation_chain(self, ca, client, three_relations):
        """Three stages deep: (((R1 ⋈ R2) ⋈ R3) ⋈ R4)."""
        r1, r2, r3 = three_relations
        r4 = Relation(
            schema("R4", k="int", d="string"),
            [(1, "d1"), (2, "d2"), (9, "d9")],
        )
        federation = Federation(ca=ca)
        for name, rel in (("S1", r1), ("S2", r2), ("S3", r3), ("S4", r4)):
            federation.add_source(name, [(rel, allow_all())])
        federation.attach_client(client)
        expected = natural_join(
            natural_join(natural_join(r1, r2), r3), r4
        )
        outcome = run_successive_joins(
            federation,
            "select * from R1 natural join R2 natural join R3 "
            "natural join R4",
            protocol="commutative",
        )
        assert outcome.global_result == expected
        assert len(outcome.stages) == 3
