"""Tests for the private-matching payload encoding."""

import secrets

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import payload
from repro.errors import EncodingError

BOUND = 1 << 1024  # a comfortable message space for most tests


class TestRoundTrip:
    def test_basic(self):
        value = payload.encode_payload((42,), b"tuple-set-bytes", BOUND)
        decoded = payload.decode_payload(value)
        assert decoded is not None
        assert decoded.body == b"tuple-set-bytes"

    def test_string_key(self):
        value = payload.encode_payload(("patient-7", 3), b"body", BOUND)
        decoded = payload.decode_payload(value)
        assert decoded is not None

    def test_empty_body(self):
        value = payload.encode_payload((1,), b"", BOUND)
        decoded = payload.decode_payload(value)
        assert decoded is not None and decoded.body == b""

    @given(
        st.tuples(st.integers(0, 10**6), st.text(max_size=8)),
        st.binary(max_size=64),
    )
    @settings(max_examples=100, deadline=None)
    def test_round_trip_property(self, key, body):
        decoded = payload.decode_payload(payload.encode_payload(key, body, BOUND))
        assert decoded is not None
        assert decoded.body == body


class TestRejection:
    def test_random_values_rejected(self):
        # The core soundness property of step 8: masked non-matches
        # decrypt to (essentially) uniform values, which must not parse.
        for _ in range(500):
            assert payload.decode_payload(secrets.randbelow(BOUND)) is None

    def test_zero_and_negative(self):
        assert payload.decode_payload(0) is None
        assert payload.decode_payload(-5) is None

    def test_bit_flip_rejected(self):
        value = payload.encode_payload((42,), b"data", BOUND)
        for shift in (0, 8, 40, value.bit_length() - 2):
            assert payload.decode_payload(value ^ (1 << shift)) is None

    def test_size_bound(self):
        with pytest.raises(EncodingError):
            payload.encode_payload((1,), b"x" * 100, 1 << 256)


class TestSessionBody:
    def test_split(self):
        session_key = bytes(range(32))
        token = b"tokens!!"
        key, tok = payload.split_session_body(session_key + token)
        assert key == session_key and tok == token

    def test_malformed(self):
        with pytest.raises(EncodingError):
            payload.split_session_body(b"short")


class TestCapacity:
    def test_capacity_is_tight(self):
        key = (12345,)
        capacity = payload.payload_capacity(BOUND, key)
        # A body exactly at capacity fits; one byte over does not.
        assert payload.decode_payload(
            payload.encode_payload(key, b"x" * capacity, BOUND)
        )
        with pytest.raises(EncodingError):
            payload.encode_payload(key, b"x" * (capacity + 1), BOUND)

    def test_tiny_bound_capacity_zero(self):
        assert payload.payload_capacity(1 << 64, (1,)) == 0
