"""Tests for join-key extraction and encodings."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import joinkeys
from repro.errors import EncodingError
from repro.relational.relation import Relation
from repro.relational.schema import schema

S = schema("R", k="int", t="string", p="string")
R = Relation(
    S,
    [
        (1, "a", "x1"),
        (1, "a", "x2"),
        (1, "b", "x3"),
        (2, "a", "x4"),
    ],
)

key_strategy = st.tuples(
    st.integers(min_value=0, max_value=10**9),
    st.text(max_size=10),
    st.booleans(),
)


class TestExtraction:
    def test_single_attribute_key(self):
        keys = joinkeys.active_key_domain(R, ("k",))
        assert keys == ((1,), (2,))

    def test_composite_key(self):
        keys = joinkeys.active_key_domain(R, ("k", "t"))
        assert set(keys) == {(1, "a"), (1, "b"), (2, "a")}

    def test_group_by_single(self):
        groups = joinkeys.group_by_key(R, ("k",))
        assert len(groups[(1,)]) == 3
        assert len(groups[(2,)]) == 1

    def test_group_by_composite(self):
        groups = joinkeys.group_by_key(R, ("k", "t"))
        assert len(groups[(1, "a")]) == 2
        assert len(groups[(1, "b")]) == 1

    def test_groups_cover_relation(self):
        groups = joinkeys.group_by_key(R, ("k", "t"))
        assert sum(len(rows) for rows in groups.values()) == len(R)

    def test_key_of(self):
        row = R.rows[0]
        assert joinkeys.key_of(R, row, ("t", "k")) == (row[1], row[0])


class TestEncoding:
    def test_canonical_across_attribute_sources(self):
        # Two sources with different schemas, same key values -> same
        # encoding (the matching-soundness property).
        assert joinkeys.encode_key((1, "a")) == joinkeys.encode_key((1, "a"))

    def test_distinct_keys_distinct_encodings(self):
        keys = [(1, "a"), (1, "b"), (2, "a"), ("1", "a"), (12, ""), (1, "a2")]
        encodings = {joinkeys.encode_key(k) for k in keys}
        assert len(encodings) == len(keys)

    def test_no_concatenation_ambiguity(self):
        assert joinkeys.encode_key(("ab", "c")) != joinkeys.encode_key(("a", "bc"))

    @given(key_strategy)
    @settings(max_examples=100, deadline=None)
    def test_int_round_trip(self, key):
        assert joinkeys.int_to_key(joinkeys.key_to_int(key, 128)) == key

    def test_empty_string_component(self):
        key = (0, "", False)
        assert joinkeys.int_to_key(joinkeys.key_to_int(key)) == key

    def test_size_bound_enforced(self):
        with pytest.raises(EncodingError):
            joinkeys.key_to_int(("x" * 100,), max_bytes=16)

    def test_invalid_int_decodings(self):
        with pytest.raises(EncodingError):
            joinkeys.int_to_key(0)
        with pytest.raises(EncodingError):
            joinkeys.int_to_key(2)  # missing sentinel
