"""White-box tests for commutative delivery internals."""

import pytest

from repro.core.commutative import (
    CommutativeConfig,
    TaggedMessage,
    _double_encrypt,
    _prepare_source,
    _shuffled,
)
from repro.crypto import commutative as comm
from repro.crypto import groups
from repro.crypto.hashes import IdealHash
from repro.errors import ProtocolError
from repro.relational.relation import Relation
from repro.relational.schema import schema

S = schema("R", k="int", p="string")
R = Relation(S, [(1, "a"), (1, "b"), (2, "c"), (3, "d")])


@pytest.fixture(scope="module")
def group():
    return groups.commutative_group(128)


@pytest.fixture(scope="module")
def ideal_hash(group):
    return IdealHash(group.p)


class TestPrepareSource:
    def test_one_message_per_active_value(self, group, ideal_hash, rsa_key):
        state, messages = _prepare_source(
            R, ("k",), group, ideal_hash, [rsa_key.public_key()],
            CommutativeConfig(),
        )
        assert len(messages) == 3  # active domain {1, 2, 3}
        assert len(state.tuple_ciphertexts) == 3

    def test_tags_are_group_elements(self, group, ideal_hash, rsa_key):
        _, messages = _prepare_source(
            R, ("k",), group, ideal_hash, [rsa_key.public_key()],
            CommutativeConfig(),
        )
        assert all(group.contains(m.tag) for m in messages)

    def test_tags_distinct(self, group, ideal_hash, rsa_key):
        _, messages = _prepare_source(
            R, ("k",), group, ideal_hash, [rsa_key.public_key()],
            CommutativeConfig(),
        )
        assert len({m.tag for m in messages}) == len(messages)

    def test_group_verification_failure(self, ideal_hash, rsa_key):
        bogus = comm.CommutativeGroup(2163)  # composite, 3 mod 4
        with pytest.raises(ProtocolError):
            _prepare_source(
                R, ("k",), bogus, IdealHash(bogus.p),
                [rsa_key.public_key()],
                CommutativeConfig(verify_group=True),
            )


class TestDoubleEncrypt:
    def test_payloads_preserved(self, group, ideal_hash, rsa_key):
        state, messages = _prepare_source(
            R, ("k",), group, ideal_hash, [rsa_key.public_key()],
            CommutativeConfig(),
        )
        other_key = comm.generate_key(group)
        doubled = _double_encrypt(messages, other_key)
        assert {id(m.payload) for m in doubled} == {
            id(m.payload) for m in messages
        }

    def test_tags_transformed(self, group, ideal_hash, rsa_key):
        _, messages = _prepare_source(
            R, ("k",), group, ideal_hash, [rsa_key.public_key()],
            CommutativeConfig(),
        )
        other_key = comm.generate_key(group)
        doubled = _double_encrypt(messages, other_key)
        original_tags = {m.tag for m in messages}
        assert all(m.tag not in original_tags for m in doubled)


class TestShuffle:
    def test_preserves_multiset(self):
        items = [TaggedMessage(tag=i, payload=b"x") for i in range(50)]
        shuffled = _shuffled(items)
        assert sorted(m.tag for m in shuffled) == list(range(50))

    def test_does_not_mutate_input(self):
        items = [TaggedMessage(tag=i, payload=b"x") for i in range(10)]
        snapshot = list(items)
        _shuffled(items)
        assert items == snapshot

    def test_actually_shuffles(self):
        items = [TaggedMessage(tag=i, payload=b"x") for i in range(64)]
        # The probability all 20 attempts return identity order is ~0.
        assert any(
            [m.tag for m in _shuffled(items)] != list(range(64))
            for _ in range(20)
        )
