"""Tests for step timing and the MediationResult container."""

import time

from repro.core.result import MediationResult, StepTiming
from repro.core.timing import (
    STEP_FAILURES_METRIC,
    STEP_SECONDS_METRIC,
    timed,
)
from repro.crypto.instrumentation import PrimitiveCounter
from repro.mediation.network import Network
from repro.relational.relation import Relation
from repro.relational.schema import schema
from repro.telemetry import MetricsRegistry, Tracer, use_metrics, use_tracer


def make_result():
    network = Network()
    network.register("a")
    network.register("b")
    return MediationResult(
        protocol="test",
        query="select *",
        global_result=Relation(schema("R", k="int"), [(1,)]),
        network=network,
        primitive_counter=PrimitiveCounter(),
    )


class TestTimed:
    def test_records_duration(self):
        result = make_result()
        with timed(result, "client", "work"):
            time.sleep(0.01)
        assert len(result.timings) == 1
        timing = result.timings[0]
        assert timing.party == "client" and timing.step == "work"
        assert timing.seconds >= 0.01

    def test_records_on_exception(self):
        result = make_result()
        try:
            with timed(result, "client", "failing"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert result.timings[0].step == "failing"

    def test_failing_step_still_records_duration_and_is_marked(self):
        result = make_result()
        try:
            with timed(result, "client", "failing"):
                time.sleep(0.01)
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        timing = result.timings[0]
        assert timing.seconds >= 0.01
        assert timing.ok is False
        assert result.failed_steps() == [timing]
        assert "client/failing" in result.summary()

    def test_successful_step_marked_ok(self):
        result = make_result()
        with timed(result, "client", "work"):
            pass
        assert result.timings[0].ok is True
        assert result.failed_steps() == []

    def test_feeds_histogram_and_failure_counter(self):
        result = make_result()
        registry = MetricsRegistry()
        with use_metrics(registry):
            with timed(result, "client", "work"):
                pass
            try:
                with timed(result, "client", "work"):
                    raise RuntimeError("boom")
            except RuntimeError:
                pass
        labels = {"party": "client", "step": "work"}
        histogram = registry.histogram(STEP_SECONDS_METRIC, labels)
        assert histogram.count == 2
        assert registry.value(STEP_FAILURES_METRIC, labels) == 1

    def test_opens_a_step_span(self):
        result = make_result()
        tracer = Tracer()
        with use_tracer(tracer):
            with timed(result, "client", "work"):
                pass
            try:
                with timed(result, "client", "bad"):
                    raise RuntimeError("boom")
            except RuntimeError:
                pass
        (work,) = tracer.find("work")
        (bad,) = tracer.find("bad")
        assert work.party == "client" and work.status == "ok"
        assert bad.status == "error"


class TestMediationResult:
    def test_seconds_aggregation(self):
        result = make_result()
        result.add_timing("client", "a", 0.5)
        result.add_timing("client", "b", 0.25)
        result.add_timing("S1", "c", 1.0)
        assert result.total_seconds() == 1.75
        assert result.seconds_at("client") == 0.75
        assert result.seconds_at("ghost") == 0.0

    def test_total_bytes_delegates_to_network(self):
        result = make_result()
        result.network.send("a", "b", "kind", b"12345")
        assert result.total_bytes() == result.network.total_bytes()

    def test_interaction_count_delegates(self):
        result = make_result()
        result.network.send("a", "b", "kind", None)
        assert result.interaction_count("a", "b") == 1

    def test_summary_mentions_key_facts(self):
        result = make_result()
        result.add_timing("client", "a", 0.5)
        summary = result.summary()
        assert "protocol: test" in summary
        assert "1 rows" in summary

    def test_step_timing_dataclass(self):
        timing = StepTiming("p", "s", 1.5)
        assert (timing.party, timing.step, timing.seconds) == ("p", "s", 1.5)
