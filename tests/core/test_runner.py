"""Tests for the end-to-end runner and federation wiring."""

import pytest

from repro import (
    CommutativeConfig,
    DASConfig,
    Federation,
    reference_join,
    run_join_query,
)
from repro.core.runner import PROTOCOLS
from repro.errors import MediationError, ProtocolError
from repro.mediation.access_control import allow_all

QUERY = "select * from R1 natural join R2"


class TestRunner:
    def test_unknown_protocol(self, federation):
        with pytest.raises(ProtocolError):
            run_join_query(federation, QUERY, protocol="quantum")

    def test_config_type_checked(self, federation):
        with pytest.raises(ProtocolError):
            run_join_query(
                federation, QUERY, protocol="das", config=CommutativeConfig()
            )

    def test_registry_complete(self):
        assert set(PROTOCOLS) == {"das", "commutative", "private-matching"}

    def test_result_metadata(self, make_federation, workload):
        result = run_join_query(
            make_federation(workload), QUERY, protocol="commutative"
        )
        assert result.query == QUERY
        assert result.protocol == "commutative"
        assert result.total_seconds() > 0
        assert result.total_bytes() > 0
        assert "protocol: commutative" in result.summary()

    def test_timings_per_party(self, make_federation, workload, client):
        result = run_join_query(
            make_federation(workload), QUERY, protocol="das",
            config=DASConfig(),
        )
        assert result.seconds_at(client.name) > 0
        assert result.seconds_at("S1") > 0

    def test_reference_join_matches_projection_query(
        self, make_federation, workload
    ):
        query = "select k from R1 natural join R2 where k >= 0"
        reference = reference_join(make_federation(workload), query)
        assert reference.schema.names() == ("k",)


class TestFederation:
    def test_duplicate_source_rejected(self, federation, workload):
        with pytest.raises(MediationError):
            federation.add_source("S1", [(workload.relation_1, allow_all())])

    def test_second_client_rejected(self, federation, client):
        with pytest.raises(MediationError):
            federation.attach_client(client)

    def test_unknown_source_lookup(self, federation):
        with pytest.raises(MediationError):
            federation.source("S99")

    def test_require_client_without_client(self, make_federation, workload):
        federation = make_federation(workload, attach_client=False)
        with pytest.raises(MediationError):
            federation.require_client()

    def test_parties_registered_on_bus(self, federation, client):
        assert set(federation.network.parties()) == {
            "mediator",
            "S1",
            "S2",
            client.name,
        }
