"""Tests for the commutative-encryption delivery phase (Listing 3)."""

import pytest

from repro import CommutativeConfig, run_join_query
from repro.core.joinkeys import active_key_domain
from repro.relational.algebra import natural_join
from repro.relational.datagen import WorkloadSpec, generate

QUERY = "select * from R1 natural join R2"


@pytest.fixture(scope="module")
def expected(workload):
    return natural_join(workload.relation_1, workload.relation_2)


class TestCorrectness:
    def test_matches_reference(self, make_federation, workload, expected):
        result = run_join_query(
            make_federation(workload), QUERY, protocol="commutative"
        )
        assert result.global_result == expected

    def test_with_tuple_ids(self, make_federation, workload, expected):
        result = run_join_query(
            make_federation(workload),
            QUERY,
            protocol="commutative",
            config=CommutativeConfig(use_tuple_ids=True),
        )
        assert result.global_result == expected

    def test_string_join(self, make_federation, string_workload):
        result = run_join_query(
            make_federation(string_workload),
            "select * from clinic natural join lab",
            protocol="commutative",
        )
        assert result.global_result == natural_join(
            string_workload.relation_1, string_workload.relation_2
        )

    def test_skewed_multiplicities(self, make_federation, skewed_workload):
        result = run_join_query(
            make_federation(skewed_workload), QUERY, protocol="commutative"
        )
        assert result.global_result == natural_join(
            skewed_workload.relation_1, skewed_workload.relation_2
        )

    def test_empty_intersection(self, make_federation):
        workload = generate(WorkloadSpec(domain_1=4, domain_2=4, overlap=0, seed=3))
        result = run_join_query(
            make_federation(workload), QUERY, protocol="commutative"
        )
        assert len(result.global_result) == 0
        assert result.artifacts["intersection_size"] == 0

    def test_multi_attribute_join(self, ca, client):
        from repro import Federation
        from repro.mediation.access_control import allow_all
        from repro.relational.relation import Relation
        from repro.relational.schema import schema

        r1 = Relation(
            schema("A", k="int", t="string", a="string"),
            [(1, "x", "a1"), (1, "y", "a2"), (2, "x", "a3")],
        )
        r2 = Relation(
            schema("B", k="int", t="string", b="string"),
            [(1, "x", "b1"), (2, "y", "b2"), (2, "x", "b3")],
        )
        federation = Federation(ca=ca)
        federation.add_source("SA", [(r1, allow_all())])
        federation.add_source("SB", [(r2, allow_all())])
        federation.attach_client(client)
        result = run_join_query(
            federation, "select * from A natural join B", protocol="commutative"
        )
        assert result.global_result == natural_join(r1, r2)

    def test_larger_group(self, make_federation, workload, expected):
        result = run_join_query(
            make_federation(workload),
            QUERY,
            protocol="commutative",
            config=CommutativeConfig(group_bits=256),
        )
        assert result.global_result == expected

    def test_group_verification_enabled(self, make_federation, workload, expected):
        result = run_join_query(
            make_federation(workload),
            QUERY,
            protocol="commutative",
            config=CommutativeConfig(verify_group=True),
        )
        assert result.global_result == expected


class TestArtifacts:
    def test_active_domain_sizes(self, make_federation, workload):
        result = run_join_query(
            make_federation(workload), QUERY, protocol="commutative"
        )
        sizes = result.artifacts["active_domain_sizes"]
        assert sizes["S1"] == len(active_key_domain(workload.relation_1, ("k",)))
        assert sizes["S2"] == len(active_key_domain(workload.relation_2, ("k",)))

    def test_intersection_size(self, make_federation, workload):
        result = run_join_query(
            make_federation(workload), QUERY, protocol="commutative"
        )
        dom_1 = set(workload.relation_1.active_domain("k"))
        dom_2 = set(workload.relation_2.active_domain("k"))
        assert result.artifacts["intersection_size"] == len(dom_1 & dom_2)

    def test_id_table_only_in_ids_mode(self, make_federation, workload):
        plain = run_join_query(
            make_federation(workload), QUERY, protocol="commutative"
        )
        with_ids = run_join_query(
            make_federation(workload),
            QUERY,
            protocol="commutative",
            config=CommutativeConfig(use_tuple_ids=True),
        )
        assert plain.artifacts["id_table_entries"] == 0
        assert with_ids.artifacts["id_table_entries"] == (
            plain.artifacts["active_domain_sizes"]["S1"]
            + plain.artifacts["active_domain_sizes"]["S2"]
        )


class TestProtocolShape:
    def test_flow_kinds(self, make_federation, workload):
        result = run_join_query(
            make_federation(workload), QUERY, protocol="commutative"
        )
        kinds = [m.kind for m in result.network.transcript]
        assert kinds == [
            "global_query",
            "partial_query",
            "partial_query",
            "commutative_setup",
            "commutative_setup",
            "commutative_m_set",
            "commutative_m_set",
            "commutative_exchange",
            "commutative_exchange",
            "commutative_double",
            "commutative_double",
            "commutative_result",
        ]

    def test_client_interacts_once(self, make_federation, workload, client):
        result = run_join_query(
            make_federation(workload), QUERY, protocol="commutative"
        )
        assert result.network.interaction_count(client.name, "mediator") == 1

    def test_sources_interact_twice(self, make_federation, workload):
        result = run_join_query(
            make_federation(workload), QUERY, protocol="commutative"
        )
        for source in ("S1", "S2"):
            assert result.network.interaction_count(source, "mediator") == 2

    def test_id_optimization_reduces_traffic(self, make_federation, workload):
        plain = run_join_query(
            make_federation(workload), QUERY, protocol="commutative"
        )
        with_ids = run_join_query(
            make_federation(workload),
            QUERY,
            protocol="commutative",
            config=CommutativeConfig(use_tuple_ids=True),
        )
        assert with_ids.total_bytes() < plain.total_bytes()

    def test_m_set_counts_equal_active_domains(self, make_federation, workload):
        result = run_join_query(
            make_federation(workload), QUERY, protocol="commutative"
        )
        m_sets = result.network.messages_of_kind("commutative_m_set")
        sizes = {m.sender: len(m.body) for m in m_sets}
        assert sizes["S1"] == len(workload.relation_1.active_domain("k"))
        assert sizes["S2"] == len(workload.relation_2.active_domain("k"))
