"""White-box tests for DAS delivery internals."""

import pytest

from repro.core.das import (
    DASConfig,
    EncryptedRelation,
    EncryptedTuple,
    ServerQuery,
    _evaluate_server_query,
    _mixed_split,
    _partition_domain,
)
from repro.crypto import hybrid
from repro.errors import ProtocolError
from repro.relational.encoding import encode_row
from repro.relational.schema import schema

S = schema("R", k="int", a="string", b="string")


class TestMixedSplit:
    def test_default_everything_sensitive(self):
        sensitive, plain = _mixed_split(S, DASConfig())
        assert sensitive == [0, 1, 2]
        assert plain == []

    def test_split_positions(self):
        config = DASConfig(mixed_plaintext_attributes=("a",))
        sensitive, plain = _mixed_split(S, config)
        assert sensitive == [0, 2]
        assert plain == [1]

    def test_foreign_names_ignored_per_schema(self):
        # Names belonging to the *other* relation are simply absent here.
        config = DASConfig(mixed_plaintext_attributes=("other_attr", "b"))
        sensitive, plain = _mixed_split(S, config)
        assert plain == [2]

    def test_all_plaintext_rejected(self):
        config = DASConfig(mixed_plaintext_attributes=("k", "a", "b"))
        with pytest.raises(ProtocolError):
            _mixed_split(S, config)


class TestPartitionDomain:
    DOMAIN = (1, 3, 5, 7, 9, 11)

    def test_singleton(self):
        partitions = _partition_domain(
            DASConfig(strategy="singleton"), self.DOMAIN, "k"
        )
        assert len(partitions) == 6

    def test_equi_depth_respects_buckets(self):
        partitions = _partition_domain(
            DASConfig(strategy="equi_depth", buckets=3), self.DOMAIN, "k"
        )
        assert len(partitions) == 3

    def test_equi_width_bounds(self):
        partitions = _partition_domain(
            DASConfig(strategy="equi_width", buckets=2), self.DOMAIN, "k"
        )
        assert all(p.bounds is not None for p in partitions)


class TestServerQueryEvaluation:
    @pytest.fixture(scope="class")
    def encrypted(self, rsa_key):
        keys = [rsa_key.public_key()]

        def row(index_value, k):
            return EncryptedTuple(
                hybrid.encrypt(keys, encode_row((k, "x", "y"))), index_value
            )

        left = EncryptedRelation(
            "S1", "R1", (row(10, 1), row(10, 2), row(20, 3))
        )
        right = EncryptedRelation(
            "S2", "R2", (row(100, 1), row(200, 3), row(200, 4))
        )
        return left, right

    def test_pair_selection(self, encrypted):
        left, right = encrypted
        result = _evaluate_server_query(
            ServerQuery(pairs=((10, 100),)), left, right
        )
        # Two left rows in bucket 10 x one right row in bucket 100.
        assert len(result) == 2

    def test_multiple_pairs_accumulate(self, encrypted):
        left, right = encrypted
        result = _evaluate_server_query(
            ServerQuery(pairs=((10, 100), (20, 200))), left, right
        )
        assert len(result) == 2 + 2

    def test_duplicate_index_targets(self, encrypted):
        left, right = encrypted
        result = _evaluate_server_query(
            ServerQuery(pairs=((10, 100), (10, 200))), left, right
        )
        assert len(result) == 2 + 4

    def test_no_pairs_no_output(self, encrypted):
        left, right = encrypted
        assert len(
            _evaluate_server_query(ServerQuery(pairs=()), left, right)
        ) == 0
