"""Tests for the DAS delivery phase (Listing 2)."""

import pytest

from repro import DASConfig, reference_join, run_join_query
from repro.core.das import ServerQuery
from repro.errors import ProtocolError
from repro.relational.datagen import WorkloadSpec, generate

QUERY = "select * from R1 natural join R2"


@pytest.fixture(scope="module")
def expected(workload):
    from repro.relational.algebra import natural_join

    return natural_join(workload.relation_1, workload.relation_2)


class TestCorrectness:
    @pytest.mark.parametrize("strategy", ["equi_depth", "equi_width", "singleton"])
    def test_matches_reference_all_strategies(
        self, make_federation, workload, expected, strategy
    ):
        result = run_join_query(
            make_federation(workload),
            QUERY,
            protocol="das",
            config=DASConfig(strategy=strategy, buckets=3),
        )
        assert result.global_result == expected

    @pytest.mark.parametrize("buckets", [1, 2, 5, 100])
    def test_matches_reference_all_bucket_counts(
        self, make_federation, workload, expected, buckets
    ):
        result = run_join_query(
            make_federation(workload),
            QUERY,
            protocol="das",
            config=DASConfig(buckets=buckets),
        )
        assert result.global_result == expected

    def test_string_join_attribute(self, make_federation, string_workload):
        federation = make_federation(string_workload)
        query = "select * from clinic natural join lab"
        result = run_join_query(federation, query, protocol="das")
        assert result.global_result == reference_join(
            make_federation(string_workload), query
        )

    def test_empty_intersection(self, make_federation):
        workload = generate(WorkloadSpec(domain_1=4, domain_2=4, overlap=0, seed=3))
        result = run_join_query(
            make_federation(workload), QUERY, protocol="das"
        )
        assert len(result.global_result) == 0

    def test_mediator_setting_same_result(
        self, make_federation, workload, expected
    ):
        result = run_join_query(
            make_federation(workload),
            QUERY,
            protocol="das",
            config=DASConfig(setting="mediator"),
        )
        assert result.global_result == expected

    def test_source_setting_same_result(
        self, make_federation, workload, expected
    ):
        result = run_join_query(
            make_federation(workload),
            QUERY,
            protocol="das",
            config=DASConfig(setting="source"),
        )
        assert result.global_result == expected
        assert result.artifacts["translator_source"] == "S1"

    def test_source_setting_client_interacts_once(
        self, make_federation, workload, client
    ):
        """The source setting removes the client's translation round
        trip: one interaction, like the non-DAS protocols."""
        result = run_join_query(
            make_federation(workload),
            QUERY,
            protocol="das",
            config=DASConfig(setting="source"),
        )
        assert result.network.interaction_count(client.name, "mediator") == 1

    def test_source_setting_flow_conforms(self, make_federation, workload):
        from repro.analysis.conformance import check_flow

        result = run_join_query(
            make_federation(workload),
            QUERY,
            protocol="das",
            config=DASConfig(setting="source"),
        )
        flow = check_flow(result)
        assert flow.conforms, flow.mismatches

    def test_source_setting_table_unreadable_by_mediator(
        self, make_federation, string_workload
    ):
        """The opposite index table travels encrypted for the translator
        source, so the mediator still sees no partition contents."""
        from repro.analysis.leakage import verify_no_plaintext_leak

        result = run_join_query(
            make_federation(string_workload),
            "select * from clinic natural join lab",
            protocol="das",
            config=DASConfig(setting="source"),
        )
        leaks = verify_no_plaintext_leak(
            result, [string_workload.relation_1, string_workload.relation_2]
        )
        assert leaks == []

    def test_mixed_model_same_result(self, make_federation, workload, expected):
        result = run_join_query(
            make_federation(workload),
            QUERY,
            protocol="das",
            config=DASConfig(mixed_plaintext_attributes=("r1_p0", "r2_p0")),
        )
        assert result.global_result == expected


class TestSupersetSemantics:
    def test_server_result_is_superset(self, make_federation, workload, expected):
        result = run_join_query(
            make_federation(workload),
            QUERY,
            protocol="das",
            config=DASConfig(buckets=2),
        )
        assert result.artifacts["server_result_size"] >= len(expected)
        assert (
            result.artifacts["server_result_size"]
            == len(expected) + result.artifacts["false_positives"]
        )

    def test_singleton_partitioning_no_false_positives(
        self, make_federation, workload
    ):
        result = run_join_query(
            make_federation(workload),
            QUERY,
            protocol="das",
            config=DASConfig(strategy="singleton"),
        )
        assert result.artifacts["false_positives"] == 0

    def test_coarser_buckets_more_false_positives(self, make_federation, workload):
        fine = run_join_query(
            make_federation(workload), QUERY, protocol="das",
            config=DASConfig(buckets=50),
        )
        coarse = run_join_query(
            make_federation(workload), QUERY, protocol="das",
            config=DASConfig(buckets=1),
        )
        assert (
            coarse.artifacts["false_positives"]
            >= fine.artifacts["false_positives"]
        )


class TestProtocolShape:
    def test_flow_kinds(self, make_federation, workload):
        result = run_join_query(make_federation(workload), QUERY, protocol="das")
        kinds = [m.kind for m in result.network.transcript]
        assert kinds == [
            "global_query",
            "partial_query",
            "partial_query",
            "das_encrypted_partial_result",
            "das_encrypted_partial_result",
            "das_encrypted_index_tables",
            "das_server_query",
            "das_server_result",
        ]

    def test_client_interacts_twice(self, make_federation, workload, client):
        result = run_join_query(make_federation(workload), QUERY, protocol="das")
        assert result.network.interaction_count(client.name, "mediator") == 2

    def test_sources_send_once(self, make_federation, workload):
        result = run_join_query(make_federation(workload), QUERY, protocol="das")
        for source in ("S1", "S2"):
            assert result.network.interaction_count(source, "mediator") == 1

    def test_cond_s_artifact_rendered(self, make_federation, workload):
        result = run_join_query(make_federation(workload), QUERY, protocol="das")
        cond_s = result.artifacts["cond_s"]
        assert "R1S" in cond_s or "FALSE" == cond_s

    def test_multi_attribute_rejected(self, make_federation, ca, client):
        from repro import Federation
        from repro.mediation.access_control import allow_all
        from repro.relational.relation import Relation
        from repro.relational.schema import schema

        federation = Federation(ca=ca)
        r1 = Relation(schema("A", k="int", t="int", a="string"), [(1, 2, "x")])
        r2 = Relation(schema("B", k="int", t="int", b="string"), [(1, 2, "y")])
        federation.add_source("SA", [(r1, allow_all())])
        federation.add_source("SB", [(r2, allow_all())])
        federation.attach_client(client)
        with pytest.raises(ProtocolError):
            run_join_query(
                federation, "select * from A natural join B", protocol="das"
            )

    def test_bad_config_rejected(self):
        with pytest.raises(ProtocolError):
            DASConfig(strategy="nope")
        with pytest.raises(ProtocolError):
            DASConfig(setting="nope")

    def test_unknown_mixed_attribute_rejected(self, make_federation, workload):
        with pytest.raises(ProtocolError):
            run_join_query(
                make_federation(workload),
                QUERY,
                protocol="das",
                config=DASConfig(mixed_plaintext_attributes=("ghost",)),
            )

    def test_join_attribute_must_stay_sensitive(self, make_federation, workload):
        with pytest.raises(ProtocolError):
            run_join_query(
                make_federation(workload),
                QUERY,
                protocol="das",
                config=DASConfig(mixed_plaintext_attributes=("k",)),
            )


class TestServerQueryCondition:
    def test_condition_formula(self):
        query = ServerQuery(pairs=((10, 20), (11, 21)))
        condition = str(query.condition("R1S", "R2S", "k"))
        assert "R1S.k = 10" in condition and "R2S.k = 21" in condition
        assert "OR" in condition and "AND" in condition

    def test_empty_pairs_is_false(self):
        query = ServerQuery(pairs=())
        assert str(query.condition("R1S", "R2S", "k")) == "FALSE"
