"""Tests for the private-matching delivery phase (Listing 4)."""

import pytest

from repro import PMConfig, run_join_query, setup_client
from repro.errors import ProtocolError
from repro.relational.algebra import natural_join
from repro.relational.datagen import WorkloadSpec, generate

QUERY = "select * from R1 natural join R2"


@pytest.fixture(scope="module")
def expected(workload):
    return natural_join(workload.relation_1, workload.relation_2)


class TestCorrectness:
    def test_session_key_mode(self, make_federation, workload, expected):
        result = run_join_query(
            make_federation(workload), QUERY, protocol="private-matching"
        )
        assert result.global_result == expected

    def test_inline_mode(self, make_federation, workload, expected):
        result = run_join_query(
            make_federation(workload),
            QUERY,
            protocol="private-matching",
            config=PMConfig(payload_mode="inline"),
        )
        assert result.global_result == expected

    def test_string_join(self, make_federation, string_workload):
        result = run_join_query(
            make_federation(string_workload),
            "select * from clinic natural join lab",
            protocol="private-matching",
        )
        assert result.global_result == natural_join(
            string_workload.relation_1, string_workload.relation_2
        )

    def test_empty_intersection(self, make_federation):
        workload = generate(WorkloadSpec(domain_1=4, domain_2=4, overlap=0, seed=3))
        result = run_join_query(
            make_federation(workload), QUERY, protocol="private-matching"
        )
        assert len(result.global_result) == 0
        assert result.artifacts["matched_keys"] == 0

    def test_full_overlap(self, make_federation, expected):
        workload = generate(WorkloadSpec(domain_1=5, domain_2=5, overlap=5, seed=6))
        result = run_join_query(
            make_federation(workload), QUERY, protocol="private-matching"
        )
        assert result.global_result == natural_join(
            workload.relation_1, workload.relation_2
        )

    def test_multi_attribute_join(self, ca, client):
        from repro import Federation
        from repro.mediation.access_control import allow_all
        from repro.relational.relation import Relation
        from repro.relational.schema import schema

        r1 = Relation(
            schema("A", k="int", t="string", a="string"),
            [(1, "x", "a1"), (2, "y", "a2")],
        )
        r2 = Relation(
            schema("B", k="int", t="string", b="string"),
            [(1, "x", "b1"), (2, "z", "b2")],
        )
        federation = Federation(ca=ca)
        federation.add_source("SA", [(r1, allow_all())])
        federation.add_source("SB", [(r2, allow_all())])
        federation.attach_client(client)
        result = run_join_query(
            federation, "select * from A natural join B",
            protocol="private-matching",
        )
        assert result.global_result == natural_join(r1, r2)


class TestRequirements:
    def test_client_without_homomorphic_key_rejected(
        self, ca, make_federation, workload
    ):
        federation = make_federation(workload, attach_client=False)
        bare_client = setup_client(ca, "bare", {("role", "x")}, rsa_bits=1024)
        federation.attach_client(bare_client)
        with pytest.raises(ProtocolError):
            run_join_query(federation, QUERY, protocol="private-matching")

    def test_bad_payload_mode_rejected(self):
        with pytest.raises(ProtocolError):
            PMConfig(payload_mode="nope")


class TestArtifacts:
    def test_polynomial_degrees_equal_domain_sizes(self, make_federation, workload):
        result = run_join_query(
            make_federation(workload), QUERY, protocol="private-matching"
        )
        degrees = result.artifacts["polynomial_degrees"]
        assert degrees["S1"] == len(workload.relation_1.active_domain("k"))
        assert degrees["S2"] == len(workload.relation_2.active_domain("k"))

    def test_evaluation_counts(self, make_federation, workload):
        result = run_join_query(
            make_federation(workload), QUERY, protocol="private-matching"
        )
        sent = result.artifacts["evaluations_sent"]
        assert sent["S1"] == len(workload.relation_1.active_domain("k"))
        assert sent["S2"] == len(workload.relation_2.active_domain("k"))

    def test_recovered_exactly_intersection(self, make_federation, workload):
        result = run_join_query(
            make_federation(workload), QUERY, protocol="private-matching"
        )
        dom_1 = set(workload.relation_1.active_domain("k"))
        dom_2 = set(workload.relation_2.active_domain("k"))
        recovered = result.artifacts["recovered_payloads"]
        assert recovered["S1"] == len(dom_1 & dom_2)
        assert recovered["S2"] == len(dom_1 & dom_2)
        assert result.artifacts["matched_keys"] == len(dom_1 & dom_2)


class TestProtocolShape:
    def test_flow_kinds_session_mode(self, make_federation, workload):
        result = run_join_query(
            make_federation(workload), QUERY, protocol="private-matching"
        )
        kinds = [m.kind for m in result.network.transcript]
        assert kinds.count("pm_encrypted_coefficients") == 4  # 2 in, 2 out
        assert kinds.count("pm_side_table") == 2
        assert kinds[-1] == "pm_side_tables"

    def test_flow_kinds_inline_mode(self, make_federation, workload):
        result = run_join_query(
            make_federation(workload),
            QUERY,
            protocol="private-matching",
            config=PMConfig(payload_mode="inline"),
        )
        kinds = [m.kind for m in result.network.transcript]
        assert "pm_side_table" not in kinds
        assert "pm_side_tables" not in kinds

    def test_client_interacts_once(self, make_federation, workload, client):
        result = run_join_query(
            make_federation(workload), QUERY, protocol="private-matching"
        )
        assert result.network.interaction_count(client.name, "mediator") == 1

    def test_sources_interact_twice(self, make_federation, workload):
        result = run_join_query(
            make_federation(workload), QUERY, protocol="private-matching"
        )
        for source in ("S1", "S2"):
            assert result.network.interaction_count(source, "mediator") == 2

    def test_client_receives_n_plus_m_values(self, make_federation, workload,
                                             client):
        result = run_join_query(
            make_federation(workload), QUERY, protocol="private-matching"
        )
        n = len(workload.relation_1.active_domain("k"))
        m = len(workload.relation_2.active_domain("k"))
        evaluations = [
            message
            for message in result.network.view(client.name).received
            if message.kind == "pm_evaluations"
        ]
        total = sum(len(values) for values in evaluations[0].body.values())
        assert total == n + m
