"""Tests for the Listing 1 request phase."""

import pytest

from repro.core.request import run_request_phase
from repro.errors import AccessDenied, MediationError, QueryError
from repro.mediation.access_control import require

QUERY = "select * from R1 natural join R2"


class TestRequestPhase:
    def test_outcome_shape(self, federation, workload):
        outcome = run_request_phase(federation, QUERY)
        assert outcome.source_names == ("S1", "S2")
        assert outcome.join_attributes == ("k",)
        assert outcome.partial_results["S1"] == workload.relation_1
        assert outcome.partial_results["S2"] == workload.relation_2

    def test_message_flow(self, federation, client):
        run_request_phase(federation, QUERY)
        transcript = federation.network.transcript
        assert [m.kind for m in transcript] == [
            "global_query",
            "partial_query",
            "partial_query",
        ]
        assert transcript[0].sender == client.name
        assert {m.receiver for m in transcript[1:]} == {"S1", "S2"}

    def test_credentials_attached_to_query(self, federation, client):
        run_request_phase(federation, QUERY)
        query_message = federation.network.transcript[0]
        assert query_message.body["credentials"] == client.credentials

    def test_join_attributes_forwarded(self, federation):
        run_request_phase(federation, QUERY)
        for message in federation.network.messages_of_kind("partial_query"):
            assert message.body["join_attributes"] == ("k",)

    def test_access_control_enforced(self, make_federation, workload):
        # Policy demands a property the client doesn't have.
        denied = make_federation(
            workload, policy_1=require(("role", "superuser"))
        )
        with pytest.raises(AccessDenied):
            run_request_phase(denied, QUERY)

    def test_no_client_attached(self, make_federation, workload):
        federation = make_federation(workload, attach_client=False)
        with pytest.raises(MediationError):
            run_request_phase(federation, QUERY)

    def test_bad_query_rejected(self, federation):
        with pytest.raises(QueryError):
            run_request_phase(federation, "select * from R1")

    def test_schema_of(self, federation, workload):
        outcome = run_request_phase(federation, QUERY)
        assert outcome.schema_of("S1") == workload.relation_1.schema
