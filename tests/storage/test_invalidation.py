"""Cache-invalidation semantics through the mediation layer.

Cached encrypted indexes are functions of (row set, protocol keys): a
row mutation must drop the relation's entries and the next query must
reflect the new rows; a key rotation must bump the epoch and drop
everything written under the old one.  Correctness-first: a stale cache
here would silently produce wrong join results, so these tests assert
both the cache bookkeeping and the query output.
"""

import pytest

from repro import Federation, run_join_query
from repro.core.runner import reference_join
from repro.mediation.access_control import allow_all
from repro.relational.encoding import encode_relation
from repro.storage import MemoryBackend, SQLiteBackend

QUERY = "select * from R1 natural join R2"


@pytest.fixture(params=["memory", "sqlite"])
def backend(request, tmp_path):
    if request.param == "memory":
        instance = MemoryBackend()
    else:
        instance = SQLiteBackend(str(tmp_path / "invalidation.db"))
    yield instance
    instance.close()


@pytest.fixture
def federation(ca, client, workload, backend):
    federation = Federation(ca=ca, storage=backend)
    federation.add_source("S1", [(workload.relation_1, allow_all())])
    federation.add_source("S2", [(workload.relation_2, allow_all())])
    federation.attach_client(client)
    return federation


def run_and_check(federation, protocol="commutative"):
    result = run_join_query(federation, QUERY, protocol=protocol)
    reference = reference_join(federation, QUERY)
    assert encode_relation(result.global_result) == encode_relation(reference)
    return result


def joining_row(workload, relation):
    """A row of ``relation`` whose join key appears on the other side."""
    other = (
        workload.relation_2
        if relation is workload.relation_1
        else workload.relation_1
    )
    k = relation.schema.position("k")
    other_k = other.schema.position("k")
    shared = {row[other_k] for row in other.rows}
    return next(row for row in relation.rows if row[k] in shared)


class TestRowMutations:
    def test_insert_invalidates_and_query_sees_new_rows(
        self, federation, backend, workload
    ):
        run_and_check(federation)
        assert backend.cache_size("S1") > 0
        before = len(run_and_check(federation).global_result)

        # Insert a fresh row whose join key definitely matches R2.
        joining = list(joining_row(workload, workload.relation_1))
        joining[-1] = "fresh-payload"
        federation.source("S1").insert_rows("R1", [tuple(joining)])

        # The mutation dropped R1's cache entries and the protocol
        # result includes the new row's matches.
        result = run_and_check(federation)
        assert len(result.global_result) > before

    def test_delete_invalidates_and_query_shrinks(self, federation, workload):
        before = len(run_and_check(federation).global_result)
        doomed = joining_row(workload, workload.relation_2)
        federation.source("S2").delete_rows("R2", [doomed])
        after = len(run_and_check(federation).global_result)
        assert after < before

    def test_update_row_changes_the_result(self, federation, workload):
        run_and_check(federation)
        old = joining_row(workload, workload.relation_1)
        updated = list(old)
        updated[-1] = "rewritten"
        federation.source("S1").update_row("R1", old, tuple(updated))
        result = run_and_check(federation)
        assert any("rewritten" in row for row in result.global_result.rows)

    def test_mutation_only_invalidates_its_relation(
        self, federation, backend, workload
    ):
        run_and_check(federation)
        s2_entries = backend.cache_size("S2")
        assert s2_entries > 0
        federation.source("S1").insert_rows(
            "R1", [workload.relation_1.rows[0]]
        )
        # Set semantics: inserting an existing row is content-neutral...
        # so S1's caches survive too; a genuinely new row must only
        # touch S1.
        new_row = list(workload.relation_1.rows[0])
        new_row[-1] = "different"
        federation.source("S1").insert_rows("R1", [tuple(new_row)])
        assert backend.cache_size("S1") == 0
        assert backend.cache_size("S2") == s2_entries


class TestKeyRotation:
    def test_rotation_bumps_epoch_and_drops_entries(
        self, federation, backend
    ):
        run_and_check(federation)
        assert backend.cache_size("S1") > 0
        assert federation.source("S1").rotate_keys() == 1
        assert backend.key_epoch("S1") == 1
        assert backend.cache_size("S1") == 0

    def test_post_rotation_queries_are_correct_and_recache(
        self, federation, backend
    ):
        run_and_check(federation)
        federation.source("S1").rotate_keys()
        federation.source("S2").rotate_keys()
        result = run_and_check(federation)
        # Everything was recomputed under the new epoch...
        assert result.artifacts["storage_cache"]["errors"] == 0
        assert backend.cache_size("S1") > 0
        # ...and is served again on the next run.
        warm = run_and_check(federation)
        assert warm.artifacts["storage_cache"]["hits"] > 0

    def test_rotation_without_storage_is_a_noop(self, ca, client, workload):
        federation = Federation(ca=ca)
        federation.add_source("S1", [(workload.relation_1, allow_all())])
        assert federation.source("S1").rotate_keys() == 0
