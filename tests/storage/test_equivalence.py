"""Backend equivalence: every protocol, every backend, same bytes.

The acceptance criterion of the storage engine: for all three delivery
protocols, a run over the memory backend, over SQLite, and with no
storage at all produce byte-identical global results — cold and warm
(second run over a hot index cache) alike.  A TCP variant guards the
transport-independence of the same claim.
"""

import pytest

from repro import Federation, run_join_query
from repro.mediation.access_control import allow_all
from repro.relational.encoding import encode_relation
from repro.storage import MemoryBackend, SQLiteBackend
from repro.transport import RetryPolicy, TcpTransport

QUERY = "select * from R1 natural join R2"
SELECTIVE_QUERY = "select * from R1 natural join R2 where k >= 2"

PROTOCOLS = ["das", "commutative", "private-matching"]

POLICY = RetryPolicy(attempts=3, base_delay=0.05, connect_timeout=5.0,
                     io_timeout=30.0)


def build(ca, client, workload, storage=None, network=None):
    if network is None:
        federation = Federation(ca=ca, storage=storage)
    else:
        federation = Federation(ca=ca, network=network, storage=storage)
    federation.add_source("S1", [(workload.relation_1, allow_all())])
    federation.add_source("S2", [(workload.relation_2, allow_all())])
    federation.attach_client(client)
    return federation


def make_backend(kind, tmp_path):
    if kind == "memory":
        return MemoryBackend()
    return SQLiteBackend(str(tmp_path / "equivalence.db"))


@pytest.fixture
def baseline(ca, client, workload):
    """No-storage result bytes per protocol (computed once per test)."""

    def compute(protocol, query=QUERY):
        federation = build(ca, client, workload)
        result = run_join_query(federation, query, protocol=protocol)
        return encode_relation(result.global_result)

    return compute


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("kind", ["memory", "sqlite"])
class TestBusEquivalence:
    def test_cold_and_warm_runs_match_no_storage(
        self, ca, client, workload, tmp_path, baseline, kind, protocol
    ):
        expected = baseline(protocol)
        backend = make_backend(kind, tmp_path)
        try:
            federation = build(ca, client, workload, storage=backend)
            cold = run_join_query(federation, QUERY, protocol=protocol)
            warm = run_join_query(federation, QUERY, protocol=protocol)
            assert encode_relation(cold.global_result) == expected
            assert encode_relation(warm.global_result) == expected
            cold_stats = cold.artifacts["storage_cache"]
            warm_stats = warm.artifacts["storage_cache"]
            assert warm_stats["hits"] > cold_stats["hits"]
            assert warm_stats["errors"] == 0
        finally:
            backend.close()


@pytest.mark.parametrize("kind", ["memory", "sqlite"])
class TestSelectionPushdownEquivalence:
    def test_where_clause_pushdown_matches(
        self, ca, client, workload, tmp_path, baseline, kind
    ):
        expected = baseline("commutative", SELECTIVE_QUERY)
        backend = make_backend(kind, tmp_path)
        try:
            federation = build(ca, client, workload, storage=backend)
            federation.mediator.push_down = True
            result = run_join_query(
                federation, SELECTIVE_QUERY, protocol="commutative"
            )
            assert encode_relation(result.global_result) == expected
        finally:
            backend.close()


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("kind", ["memory", "sqlite"])
class TestTcpEquivalence:
    def test_tcp_run_matches_bus_run(
        self, ca, client, workload, tmp_path, baseline, kind, protocol
    ):
        expected = baseline(protocol)
        backend = make_backend(kind, tmp_path)
        try:
            with TcpTransport(retry=POLICY) as transport:
                federation = build(
                    ca, client, workload, storage=backend, network=transport
                )
                result = run_join_query(federation, QUERY, protocol=protocol)
                assert encode_relation(result.global_result) == expected
        finally:
            backend.close()


class TestCrossProcessPersistence:
    """A fresh SQLiteBackend over the same file resumes the warm cache."""

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_reopened_store_yields_cache_hits(
        self, ca, client, workload, tmp_path, baseline, protocol
    ):
        expected = baseline(protocol)
        path = str(tmp_path / "persist.db")

        first = SQLiteBackend(path)
        try:
            federation = build(ca, client, workload, storage=first)
            cold = run_join_query(federation, QUERY, protocol=protocol)
            assert encode_relation(cold.global_result) == expected
        finally:
            first.close()

        second = SQLiteBackend(path)
        try:
            federation = build(ca, client, workload, storage=second)
            warm = run_join_query(federation, QUERY, protocol=protocol)
            assert encode_relation(warm.global_result) == expected
            # Same client key material, same relations: the second
            # "process" must reuse persisted index material.
            assert warm.artifacts["storage_cache"]["hits"] > 0
        finally:
            second.close()
