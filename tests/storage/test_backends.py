"""StorageBackend contract tests, run against both implementations.

The memory backend is the semantic reference; every behavioural test
here is parameterized over both so the SQLite implementation can never
drift from it.
"""

import pytest

from repro.errors import StorageError
from repro.relational.algebra import select
from repro.relational.conditions import Comparison
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, AttributeType, Schema
from repro.storage import (
    MemoryBackend,
    SQLiteBackend,
    storage_from_spec,
)
from repro.storage.serialize import (
    deserialize_hybrid,
    deserialize_int,
    deserialize_int_list,
    serialize_hybrid,
    serialize_int,
    serialize_int_list,
)

SCHEMA = Schema(
    "R",
    (
        Attribute("k", AttributeType.INT),
        Attribute("name", AttributeType.STRING),
        Attribute("active", AttributeType.BOOL),
    ),
)

ROWS = [
    (1, "ada", True),
    (2, "bob", False),
    (3, "eve", True),
]


def make_relation(rows=None, name="R"):
    schema = SCHEMA if name == "R" else Schema(name, SCHEMA.attributes)
    return Relation(schema, rows if rows is not None else ROWS)


@pytest.fixture(params=["memory", "sqlite"])
def backend(request, tmp_path):
    if request.param == "memory":
        instance = MemoryBackend()
    else:
        instance = SQLiteBackend(str(tmp_path / "store.db"))
    yield instance
    instance.close()


class TestRows:
    def test_store_load_round_trip(self, backend):
        relation = make_relation()
        assert backend.store_relation("S1", relation) is True
        loaded = backend.load_relation("S1", "R")
        assert loaded == relation
        assert loaded.schema == relation.schema

    def test_identical_content_is_a_noop(self, backend):
        relation = make_relation()
        backend.store_relation("S1", relation)
        backend.cache_put("S1", "R", "comm_tag", b"key", b"value")
        # Re-storing the same rows must not invalidate the cache: this
        # is what keeps indexes warm across process restarts.
        assert backend.store_relation("S1", make_relation()) is False
        assert backend.cache_get("S1", "R", "comm_tag", b"key") == b"value"

    def test_changed_content_invalidates(self, backend):
        backend.store_relation("S1", make_relation())
        backend.cache_put("S1", "R", "comm_tag", b"key", b"value")
        changed = make_relation(rows=ROWS + [(4, "dan", False)])
        assert backend.store_relation("S1", changed) is True
        assert backend.cache_get("S1", "R", "comm_tag", b"key") is None
        assert backend.load_relation("S1", "R") == changed

    def test_namespaces_are_isolated(self, backend):
        backend.store_relation("S1", make_relation())
        assert backend.load_relation("S2", "R") is None
        assert backend.relation_names("S2") == []
        assert backend.relation_names("S1") == ["R"]

    def test_missing_relation_is_none(self, backend):
        assert backend.load_relation("S1", "nope") is None


class TestSelectPushdown:
    @pytest.mark.parametrize(
        "condition",
        [
            None,
            Comparison("k", ">=", 2),
            Comparison("name", "=", "ada"),
            Comparison("active", "=", True),
        ],
    )
    def test_matches_algebra_select(self, backend, condition):
        relation = make_relation()
        backend.store_relation("S1", relation)
        pushed = backend.select("S1", "R", condition)
        reference = (
            relation if condition is None else select(relation, condition)
        )
        assert sorted(pushed.rows) == sorted(reference.rows)
        assert pushed.schema.attributes == relation.schema.attributes

    def test_types_survive_the_round_trip(self, backend):
        backend.store_relation("S1", make_relation())
        result = backend.select("S1", "R", None)
        row = sorted(result.rows)[0]
        assert isinstance(row[0], int)
        assert isinstance(row[1], str)
        assert isinstance(row[2], bool)

    def test_unknown_relation_raises(self, backend):
        with pytest.raises(StorageError):
            backend.select("S1", "nope", None)


class TestBucketJoin:
    def test_matches_and_ordering(self, backend):
        left = [b"a", b"b", b"a"]
        right = [b"x", b"y"]
        pairs = [(b"a", b"y"), (b"b", b"x")]
        assert backend.bucket_join(left, right, pairs) == [
            (0, 1),
            (1, 0),
            (2, 1),
        ]

    def test_duplicate_pairs_deduplicate(self, backend):
        matches = backend.bucket_join(
            [b"a"], [b"x"], [(b"a", b"x"), (b"a", b"x")]
        )
        assert matches == [(0, 0)]

    def test_no_matches(self, backend):
        assert backend.bucket_join([b"a"], [b"x"], [(b"q", b"x")]) == []


class TestCacheAndEpochs:
    def test_epoch_starts_at_zero(self, backend):
        assert backend.key_epoch("S1") == 0

    def test_put_get(self, backend):
        backend.cache_put("S1", "R", "comm_tag", b"k1", b"v1")
        assert backend.cache_get("S1", "R", "comm_tag", b"k1") == b"v1"
        assert backend.cache_get("S1", "R", "comm_tag", b"k2") is None
        assert backend.cache_get("S1", "R", "das_index", b"k1") is None

    def test_overwrite(self, backend):
        backend.cache_put("S1", "R", "comm_tag", b"k", b"old")
        backend.cache_put("S1", "R", "comm_tag", b"k", b"new")
        assert backend.cache_get("S1", "R", "comm_tag", b"k") == b"new"

    def test_epoch_bump_drops_stale_entries(self, backend):
        backend.cache_put("S1", "R", "comm_tag", b"k", b"v")
        assert backend.bump_key_epoch("S1") == 1
        assert backend.cache_get("S1", "R", "comm_tag", b"k") is None
        assert backend.cache_size("S1") == 0
        # Entries written under the new epoch are served again.
        backend.cache_put("S1", "R", "comm_tag", b"k", b"v2")
        assert backend.cache_get("S1", "R", "comm_tag", b"k") == b"v2"

    def test_epoch_bump_is_per_namespace(self, backend):
        backend.cache_put("S1", "R", "comm_tag", b"k", b"v1")
        backend.cache_put("S2", "R", "comm_tag", b"k", b"v2")
        backend.bump_key_epoch("S1")
        assert backend.cache_get("S1", "R", "comm_tag", b"k") is None
        assert backend.cache_get("S2", "R", "comm_tag", b"k") == b"v2"

    def test_invalidate_relation_is_per_relation(self, backend):
        backend.cache_put("S1", "R", "comm_tag", b"k", b"v1")
        backend.cache_put("S1", "Q", "comm_tag", b"k", b"v2")
        assert backend.invalidate_relation("S1", "R") == 1
        assert backend.cache_get("S1", "R", "comm_tag", b"k") is None
        assert backend.cache_get("S1", "Q", "comm_tag", b"k") == b"v2"

    def test_cache_size(self, backend):
        backend.cache_put("S1", "R", "comm_tag", b"k1", b"v")
        backend.cache_put("S1", "R", "das_index", b"k2", b"v")
        backend.cache_put("S2", "R", "comm_tag", b"k1", b"v")
        assert backend.cache_size("S1") == 2
        assert backend.cache_size() == 3


class TestSQLitePersistence:
    def test_everything_survives_a_reopen(self, tmp_path):
        path = str(tmp_path / "store.db")
        first = SQLiteBackend(path)
        relation = make_relation()
        first.store_relation("S1", relation)
        first.cache_put("S1", "R", "comm_tag", b"k", b"v")
        first.bump_key_epoch("S2")
        first.close()

        second = SQLiteBackend(path)
        try:
            assert second.load_relation("S1", "R") == relation
            assert second.cache_get("S1", "R", "comm_tag", b"k") == b"v"
            assert second.key_epoch("S1") == 0
            assert second.key_epoch("S2") == 1
        finally:
            second.close()

    def test_in_memory_database_is_not_persistent(self):
        backend = SQLiteBackend(":memory:")
        try:
            assert backend.persistent is False
        finally:
            backend.close()


class TestSpecParsing:
    def test_none_and_empty(self):
        assert storage_from_spec(None) is None
        assert storage_from_spec("") is None

    def test_memory(self):
        backend = storage_from_spec("memory")
        assert isinstance(backend, MemoryBackend)

    def test_sqlite(self, tmp_path):
        backend = storage_from_spec(f"sqlite:{tmp_path / 's.db'}")
        try:
            assert isinstance(backend, SQLiteBackend)
            assert backend.persistent is True
        finally:
            backend.close()

    @pytest.mark.parametrize("spec", ["sqlite:", "postgres:db", "bogus"])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(StorageError):
            storage_from_spec(spec)


class TestSerializers:
    def test_int_round_trip(self):
        for value in (0, 1, 255, 256, 2**521 - 1):
            assert deserialize_int(serialize_int(value)) == value

    def test_int_list_round_trip(self):
        values = [0, 7, 2**128, 13]
        assert deserialize_int_list(serialize_int_list(values)) == values
        assert deserialize_int_list(serialize_int_list([])) == []

    def test_hybrid_round_trip(self):
        from repro.crypto.hybrid import HybridCiphertext

        ciphertext = HybridCiphertext(
            wrapped_keys={b"fp2": b"wrapped2", b"fp1": b"wrapped1"},
            body=b"\x00\x01payload",
        )
        restored = deserialize_hybrid(serialize_hybrid(ciphertext))
        assert dict(restored.wrapped_keys) == dict(ciphertext.wrapped_keys)
        assert restored.body == ciphertext.body

    @pytest.mark.parametrize("mutate", ["truncate", "flip", "extend"])
    def test_corrupt_blobs_rejected(self, mutate):
        from repro.crypto.hybrid import HybridCiphertext

        blob = serialize_hybrid(
            HybridCiphertext(wrapped_keys={b"fp": b"w"}, body=b"body")
        )
        if mutate == "truncate":
            corrupt = blob[: len(blob) // 2]
        elif mutate == "flip":
            corrupt = bytes([blob[0] ^ 0xFF]) + blob[1:]
        else:
            corrupt = blob + b"trailing"
        with pytest.raises(StorageError):
            deserialize_hybrid(corrupt)

    def test_corrupt_int_list_rejected(self):
        blob = serialize_int_list([1, 2, 3])
        with pytest.raises(StorageError):
            deserialize_int_list(bytes([blob[0] ^ 0xFF]) + blob[1:])
