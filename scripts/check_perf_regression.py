#!/usr/bin/env python3
"""CI perf-regression gate over committed ``BENCH_*.json`` baselines.

The benchmarks emit self-describing perf artifacts (schema
``repro-bench/1``, see ``benchmarks/conftest.py``): a ``metrics`` map
plus a ``gate`` declaring which metrics are regression-gated and how —

* ``direction: "max"`` — bigger is worse; the candidate must stay at or
  below ``baseline * (1 + tolerance)``,
* ``direction: "min"`` — bigger is better; the candidate must stay at
  or above ``baseline * (1 - tolerance)``.

Gate policy is taken from the **baseline** (the committed file is the
contract); ungated metrics are reported but never fail the build.  Only
host-independent metrics (ratios, counts) should be gated — absolute
wall-clock differs between the baseline host and CI runners.

Usage (what the ``perf-gate`` CI job runs)::

    python scripts/check_perf_regression.py \
        --baseline benchmarks/baselines --candidate benchmarks/out

Exit codes: 0 all gates pass, 1 regression or missing candidate,
2 usage/parse error.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

SCHEMA = "repro-bench/1"


class GateError(Exception):
    """Malformed artifact or gate declaration."""


def load_bench(path: pathlib.Path) -> dict:
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise GateError(f"{path}: unreadable bench artifact: {exc}") from exc
    if document.get("schema") != SCHEMA:
        raise GateError(
            f"{path}: expected schema {SCHEMA!r}, "
            f"got {document.get('schema')!r}"
        )
    for key in ("bench", "metrics", "gate"):
        if key not in document:
            raise GateError(f"{path}: missing {key!r}")
    return document


def check_metric(
    name: str, rule: dict, baseline: float, candidate: float
) -> tuple[bool, str]:
    """Apply one gate rule; returns (passed, human verdict line).

    A rule may add an absolute ``slack`` on top of the relative
    tolerance (``bound = baseline * (1 ± tolerance) ± slack``) so a
    zero-valued baseline — common for leakage distances — does not make
    the gate infinitely strict.
    """
    direction = rule.get("direction")
    tolerance = float(rule.get("tolerance", 0.0))
    slack = float(rule.get("slack", 0.0))
    if direction == "max":
        bound = baseline * (1.0 + tolerance) + slack
        passed = candidate <= bound
        relation = f"<= {bound:g}"
    elif direction == "min":
        bound = baseline * (1.0 - tolerance) - slack
        passed = candidate >= bound
        relation = f">= {bound:g}"
    else:
        raise GateError(f"gate {name!r}: unknown direction {direction!r}")
    status = "ok  " if passed else "FAIL"
    return passed, (
        f"  {status} {name:32s} baseline {baseline:>10g}  "
        f"candidate {candidate:>10g}  (need {relation})"
    )


def compare(baseline_doc: dict, candidate_doc: dict) -> tuple[bool, list[str]]:
    lines: list[str] = []
    all_passed = True
    for key in ("gate", "metrics"):
        if key not in baseline_doc:
            raise GateError(f"baseline document is missing {key!r}")
    if "metrics" not in candidate_doc:
        raise GateError("candidate document is missing 'metrics'")
    gate = baseline_doc["gate"]
    base_metrics = baseline_doc["metrics"]
    cand_metrics = candidate_doc["metrics"]
    for name in sorted(gate):
        if name not in base_metrics:
            raise GateError(f"gated metric {name!r} missing from baseline")
        if name not in cand_metrics:
            all_passed = False
            lines.append(f"  FAIL {name:32s} missing from candidate run")
            continue
        try:
            values = float(base_metrics[name]), float(cand_metrics[name])
        except (TypeError, ValueError) as exc:
            raise GateError(
                f"gated metric {name!r} is not numeric "
                f"(baseline {base_metrics[name]!r}, "
                f"candidate {cand_metrics[name]!r})"
            ) from exc
        passed, line = check_metric(name, gate[name], *values)
        all_passed &= passed
        lines.append(line)
    for name in sorted(set(cand_metrics) - set(gate)):
        try:
            rendered = f"{float(cand_metrics[name]):>10g}"
        except (TypeError, ValueError):
            rendered = repr(cand_metrics[name])
        lines.append(f"  info {name:32s} candidate {rendered}  (ungated)")
    return all_passed, lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", required=True, type=pathlib.Path,
        help="directory of committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--candidate", required=True, type=pathlib.Path,
        help="directory of freshly measured BENCH_*.json artifacts",
    )
    parser.add_argument(
        "--only", action="append", default=[], metavar="BENCH",
        help="gate only these bench names (repeatable; default: every "
             "baseline present)",
    )
    args = parser.parse_args(argv)

    baselines = sorted(args.baseline.glob("BENCH_*.json"))
    if args.only:
        baselines = [
            path for path in baselines
            if path.stem.removeprefix("BENCH_") in args.only
        ]
    if not baselines:
        print(f"no BENCH_*.json baselines under {args.baseline}", file=sys.stderr)
        return 2

    failures = 0
    compared = 0
    try:
        for baseline_path in baselines:
            # Sibling artifact families (the repro-leakage/1 baseline of
            # check_leakage_regression.py) share the BENCH_ prefix; this
            # gate only judges repro-bench/1 documents.
            try:
                schema = json.loads(baseline_path.read_text()).get("schema")
            except (OSError, json.JSONDecodeError) as exc:
                raise GateError(f"{baseline_path}: unreadable: {exc}") from exc
            if schema != SCHEMA:
                print(f"skipping {baseline_path.name} (schema {schema!r})")
                continue
            baseline_doc = load_bench(baseline_path)
            compared += 1
            candidate_path = args.candidate / baseline_path.name
            print(f"{baseline_doc['bench']}:")
            if not candidate_path.exists():
                print(f"  FAIL candidate artifact {candidate_path} missing")
                failures += 1
                continue
            candidate_doc = load_bench(candidate_path)
            if candidate_doc["bench"] != baseline_doc["bench"]:
                raise GateError(
                    f"{candidate_path}: bench name mismatch "
                    f"({candidate_doc['bench']!r} vs {baseline_doc['bench']!r})"
                )
            passed, lines = compare(baseline_doc, candidate_doc)
            print("\n".join(lines))
            if not passed:
                failures += 1
    except GateError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if failures:
        print(f"\nperf gate: {failures} bench(es) regressed")
        return 1
    if not compared:
        print("\nperf gate: no repro-bench/1 baselines to compare", file=sys.stderr)
        return 2
    print(f"\nperf gate: all {compared} bench(es) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
