#!/usr/bin/env python
"""Validate telemetry artifacts produced by a traced ``repro`` run.

Usage::

    python scripts/validate_telemetry.py --trace trace.json --metrics metrics.prom

Checks the Chrome trace-event document with the repo's internal linter
(``validate_chrome_trace``) and the Prometheus text exposition with
``validate_exposition``.  Optionally asserts that the trace is a single
stitched trace covering an expected set of parties (``--expect-party``,
repeatable).  Exits non-zero and prints every problem on failure.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.telemetry.exporters import validate_chrome_trace, validate_exposition


def check_trace(path: str, expected_parties: list[str]) -> list[str]:
    problems: list[str] = []
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as error:
        return [f"{path}: unreadable Chrome trace: {error}"]
    problems += [f"{path}: {p}" for p in validate_chrome_trace(document)]

    events = [e for e in document.get("traceEvents", []) if e.get("ph") == "X"]
    if not events:
        problems.append(f"{path}: trace contains no complete ('X') events")
        return problems

    trace_ids = {e["args"].get("trace_id") for e in events}
    if len(trace_ids) != 1:
        problems.append(
            f"{path}: expected one stitched trace, found trace IDs {sorted(map(str, trace_ids))}"
        )
    parties = {e["args"].get("party") for e in events}
    missing = [p for p in expected_parties if p not in parties]
    if missing:
        problems.append(
            f"{path}: parties missing from trace: {missing} (present: {sorted(map(str, parties))})"
        )
    return problems


def check_metrics(path: str) -> list[str]:
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        return [f"{path}: unreadable metrics file: {error}"]
    problems = [f"{path}: {p}" for p in validate_exposition(text)]
    if "repro_crypto_primitive_ops_total" not in text:
        problems.append(f"{path}: no primitive-op samples in exposition")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", help="Chrome trace-event JSON to validate")
    parser.add_argument("--metrics", help="Prometheus exposition to lint")
    parser.add_argument(
        "--expect-party",
        action="append",
        default=[],
        help="party that must appear in the trace (repeatable)",
    )
    args = parser.parse_args(argv)
    if not args.trace and not args.metrics:
        parser.error("nothing to validate: pass --trace and/or --metrics")

    problems: list[str] = []
    if args.trace:
        problems += check_trace(args.trace, args.expect_party)
    if args.metrics:
        problems += check_metrics(args.metrics)

    for problem in problems:
        print(f"FAIL {problem}", file=sys.stderr)
    if not problems:
        checked = [p for p in (args.trace, args.metrics) if p]
        print(f"ok: {', '.join(checked)}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
