# Shared CI plumbing for jobs that run real `repro serve` processes.
#
# Source this file (do not execute it):
#
#     source "$GITHUB_WORKSPACE/scripts/ci_serve_trio.sh"
#     serve_trio                       # mediator + S1 + S2 on demo ports
#     serve_wait 7401 7402 7403        # block until each accepts a frame
#     ... drive the endpoints ...
#                                      # cleanup + log dump on failure is
#                                      # installed on EXIT automatically
#
# For fleets that need per-party flags (crypto backends, shards), start
# each endpoint with serve_party and wait on the ports explicitly:
#
#     serve_party mediator-1 mediator --shard 1/2 --port 7411
#     serve_party router     router   --port 7401 \
#         --shard-endpoint 127.0.0.1:7411
#     serve_wait 7411 7401
#
# Readiness is real, not a sleep: serve_wait retries a HELLO frame
# against every port until the endpoint answers with a well-formed
# frame, so a slow-importing process is waited on and a crashed one
# fails the job within the timeout, with its log dumped.

set -euo pipefail

_SERVE_PIDS=()

serve_cleanup() {
  local status=$?
  trap - EXIT
  if [ "${#_SERVE_PIDS[@]}" -gt 0 ]; then
    kill "${_SERVE_PIDS[@]}" 2>/dev/null || true
    wait "${_SERVE_PIDS[@]}" 2>/dev/null || true
  fi
  if [ "$status" -ne 0 ]; then
    echo "::group::endpoint logs"
    tail -n +1 serve-*.log 2>/dev/null || true
    echo "::endgroup::"
  fi
  exit "$status"
}
trap serve_cleanup EXIT

# serve_party LOGNAME ROLE [ARGS...] — start one endpoint in the
# background, logging to serve-LOGNAME.log in the current directory.
serve_party() {
  local logname=$1
  shift
  python -m repro serve "$@" > "serve-$logname.log" 2>&1 &
  _SERVE_PIDS+=("$!")
}

# serve_pid LOGNAME-INDEX — pid of the Nth serve_party call (0-based),
# for chaos legs that signal a specific endpoint.
serve_pid() {
  echo "${_SERVE_PIDS[$1]}"
}

# serve_trio [EXTRA_ARGS...] — the standard demo fleet on the
# well-known ports; extra args are appended to every endpoint.
serve_trio() {
  serve_party mediator mediator "$@"
  serve_party S1 source --party S1 "$@"
  serve_party S2 source --party S2 "$@"
}

# serve_wait PORT [PORT...] — poll until every port answers a HELLO
# frame with a well-formed frame, or fail after SERVE_WAIT_SECS
# (default 60).  This is the readiness barrier: `sleep 2` races slow
# imports on loaded runners.
serve_wait() {
  python - "$@" <<'PY'
import os
import socket
import sys
import time

from repro.transport import codec

deadline = time.monotonic() + float(os.environ.get("SERVE_WAIT_SECS", "60"))
pending = [int(port) for port in sys.argv[1:]]
probe = codec.build_frame(
    codec.HELLO, codec.encode_value({"party": "ci-probe"})
)
while pending:
    port = pending[0]
    try:
        with socket.create_connection(("127.0.0.1", port), timeout=2) as sock:
            sock.settimeout(5)
            sock.sendall(probe)
            header = b""
            while len(header) < codec.FRAME_HEADER_BYTES:
                chunk = sock.recv(codec.FRAME_HEADER_BYTES - len(header))
                if not chunk:
                    raise ConnectionError("closed mid-handshake")
                header += chunk
            codec.parse_frame_header(header)
    except (OSError, codec.CodecError):
        if time.monotonic() > deadline:
            print(f"endpoint on port {port} never became ready", file=sys.stderr)
            sys.exit(1)
        time.sleep(0.2)
        continue
    pending.pop(0)
print(f"endpoints ready on ports: {' '.join(sys.argv[1:])}")
PY
}
