#!/usr/bin/env python3
"""CI leakage-regression gate over the committed ``repro-leakage/1`` baseline.

``repro audit --differential`` (and ``benchmarks/bench_table1_leakage.py``)
emit a deterministic leakage artifact: per protocol and per adversary,
explicit distances between the observable distributions of two adjacent
workloads (see ``docs/observability.md``).  This gate compares a fresh
candidate artifact against the committed baseline
(``benchmarks/baselines/BENCH_leakage_audit.json``) exactly like the
perf gate compares bench numbers — the tolerance machinery *is*
:mod:`check_perf_regression`'s, extended with the absolute ``slack``
term leakage rules rely on (a zero-distance baseline must still admit
noise-free integer deltas of a couple of messages).

Gate policy comes from the **baseline** (the committed file is the
contract).  Metrics are flattened to ``protocol/adversary/metric`` keys;
a gated key missing from the candidate fails the build.

Usage (what the ``leakage-gate`` CI job runs)::

    python scripts/check_leakage_regression.py \
        --baseline benchmarks/baselines/BENCH_leakage_audit.json \
        --candidate benchmarks/out/BENCH_leakage_audit.json

The job also re-runs the audit with the deliberately size-leaking
canary transport (``repro audit --differential --canary``) and checks
the gate *fails* on it (``--expect-fail``): a leakage gate that cannot
detect a planted size channel is vacuous.

Exit codes: 0 gate passed (or, with ``--expect-fail``, failed as
expected), 1 regression (or unexpected canary pass), 2 usage/parse
error.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from check_perf_regression import GateError, check_metric  # noqa: E402

SCHEMA = "repro-leakage/1"


def load_leakage(path: pathlib.Path) -> dict:
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise GateError(f"{path}: unreadable leakage artifact: {exc}") from exc
    if document.get("schema") != SCHEMA:
        raise GateError(
            f"{path}: expected schema {SCHEMA!r}, "
            f"got {document.get('schema')!r}"
        )
    for key in ("transport", "protocols", "gate"):
        if key not in document:
            raise GateError(f"{path}: missing {key!r}")
    return document


def flatten_distances(document: dict) -> dict[str, float]:
    """``protocol/adversary/metric`` -> distance value."""
    if "protocols" not in document:
        raise GateError("leakage document is missing 'protocols'")
    flat: dict[str, float] = {}
    for protocol, entry in document["protocols"].items():
        for adversary, audit in entry.get("adversaries", {}).items():
            for metric, value in audit.get("distances", {}).items():
                flat[f"{protocol}/{adversary}/{metric}"] = float(value)
    return flat


def compare(baseline_doc: dict, candidate_doc: dict) -> tuple[bool, list[str]]:
    # A baseline labelled transport "any" (hardened distances are
    # transport-independent by construction) gates candidates measured
    # on either carrier.
    if (
        baseline_doc["transport"] != "any"
        and candidate_doc["transport"] != baseline_doc["transport"]
    ):
        raise GateError(
            f"transport mismatch: baseline {baseline_doc['transport']!r} "
            f"vs candidate {candidate_doc['transport']!r}"
        )
    if bool(candidate_doc.get("hardened")) != bool(baseline_doc.get("hardened")):
        raise GateError(
            f"hardened-flag mismatch: baseline "
            f"hardened={bool(baseline_doc.get('hardened'))} vs candidate "
            f"hardened={bool(candidate_doc.get('hardened'))}; compare "
            f"like against like"
        )
    if candidate_doc.get("workload") != baseline_doc.get("workload"):
        raise GateError(
            "workload mismatch: baseline and candidate audited different "
            "inputs; regenerate the baseline"
        )
    if "gate" not in baseline_doc:
        raise GateError("baseline document is missing 'gate'")
    gate = baseline_doc["gate"]
    base = flatten_distances(baseline_doc)
    candidate = flatten_distances(candidate_doc)
    lines: list[str] = []
    all_passed = True
    for name in sorted(gate):
        if name not in base:
            raise GateError(f"gated distance {name!r} missing from baseline")
        if name not in candidate:
            all_passed = False
            lines.append(f"  FAIL {name:52s} missing from candidate run")
            continue
        passed, line = check_metric(name, gate[name], base[name], candidate[name])
        all_passed &= passed
        lines.append(line)
    for name in sorted(set(candidate) - set(gate)):
        lines.append(
            f"  info {name:52s} candidate {candidate[name]:>10g}  (ungated)"
        )
    return all_passed, lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", required=True, type=pathlib.Path,
        help="committed repro-leakage/1 baseline artifact",
    )
    parser.add_argument(
        "--candidate", required=True, type=pathlib.Path,
        help="freshly measured repro-leakage/1 artifact",
    )
    parser.add_argument(
        "--expect-fail", action="store_true",
        help="invert the verdict: exit 0 only when the gate FAILS "
             "(the seeded-canary check)",
    )
    args = parser.parse_args(argv)

    try:
        baseline_doc = load_leakage(args.baseline)
        if not args.candidate.exists():
            print(f"candidate artifact {args.candidate} missing", file=sys.stderr)
            return 1
        candidate_doc = load_leakage(args.candidate)
        passed, lines = compare(baseline_doc, candidate_doc)
    except GateError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(f"leakage gate ({baseline_doc['transport']} transport):")
    print("\n".join(lines))
    if args.expect_fail:
        if passed:
            print(
                "\nleakage gate: PASSED but was expected to fail — the "
                "canary leak went undetected"
            )
            return 1
        print("\nleakage gate: failed as expected (canary detected)")
        return 0
    if not passed:
        print("\nleakage gate: observable distances regressed")
        return 1
    print("\nleakage gate: all distances within the committed envelope")
    return 0


if __name__ == "__main__":
    sys.exit(main())
