"""Successive joins across a mediator hierarchy (Section 8 extension).

Three datasources hold supplier, shipment, and customs records sharing a
``consignment`` key.  The three-way natural join executes as two
successive secure joins: the first stage's (still client-encrypted, then
client-decrypted) result is re-hosted behind a delegate datasource — the
lower mediator acting as a datasource for the upper mediator — and
joined with the third relation.

Run:  python examples/mediator_hierarchy.py [--storage memory|sqlite:PATH]

With ``--storage`` every source — including the delegate datasource the
hierarchy creates for the intermediate result — keeps its rows and
encrypted-index caches in the backend.
"""

import argparse

from repro import CertificationAuthority, Federation, setup_client
from repro.core.hierarchy import run_successive_joins
from repro.mediation.access_control import allow_all
from repro.relational import relation, schema
from repro.storage import StorageBackend, storage_from_spec


def build_federation(storage: StorageBackend | None = None) -> Federation:
    ca = CertificationAuthority(key_bits=1024)
    federation = Federation(ca=ca, storage=storage)

    suppliers = relation(
        schema("suppliers", consignment="string", supplier="string"),
        [
            ("c-100", "acme"),
            ("c-101", "globex"),
            ("c-102", "initech"),
        ],
    )
    shipments = relation(
        schema("shipments", consignment="string", vessel="string", port="string"),
        [
            ("c-100", "maria", "rotterdam"),
            ("c-101", "kestrel", "hamburg"),
            ("c-103", "maria", "antwerp"),
        ],
    )
    customs = relation(
        schema("customs", consignment="string", status="string"),
        [
            ("c-100", "cleared"),
            ("c-101", "inspection"),
            ("c-102", "cleared"),
        ],
    )
    federation.add_source("supplier-registry", [(suppliers, allow_all())])
    federation.add_source("port-authority", [(shipments, allow_all())])
    federation.add_source("customs-office", [(customs, allow_all())])
    federation.attach_client(
        setup_client(ca, "trade-analyst", {("role", "analyst")}, rsa_bits=1024)
    )
    return federation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--storage",
        default=None,
        metavar="SPEC",
        help="storage backend: 'memory' or 'sqlite:PATH'",
    )
    args = parser.parse_args()
    storage = storage_from_spec(args.storage)

    federation = build_federation(storage)
    query = (
        "select * from suppliers natural join shipments natural join customs"
    )
    try:
        outcome = run_successive_joins(federation, query, protocol="commutative")
    finally:
        if storage is not None:
            storage.close()
    if storage is not None:
        print(f"storage backend: {storage.describe()}")
    print(f"query: {query}")
    print(f"stages: {len(outcome.stages)}")
    for index, stage in enumerate(outcome.stages, start=1):
        print(
            f"  stage {index}: {stage.protocol}, "
            f"{len(stage.global_result)} rows, "
            f"{stage.total_bytes()} bytes on the wire"
        )
    print()
    print(outcome.global_result.pretty())


if __name__ == "__main__":
    main()
