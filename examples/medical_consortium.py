"""Inter-enterprise scenario with credential-based access control.

The paper's Section 1 motivates mediation for "loosely coupled
participants ... that do not trust each other".  This example models a
medical research consortium: a clinic and an insurance company supply
data to a shared mediator; row-level access policies at each source
restrict what different credential holders may see.

Two clients issue the same global query:

* a *researcher* may only see anonymizable oncology rows at the clinic
  and no financial details at the insurer,
* an *auditor* with stronger credentials gets everything.

The mediator computes both joins over ciphertexts; neither the partial
results nor the global result are ever visible to it — yet access
control still filtered each client's view at the sources.

Run:  python examples/medical_consortium.py [--storage memory|sqlite:PATH]

With ``--storage`` the sources keep their rows and encrypted-index
caches in a backend (docs/storage.md).  Cache entries are keyed by the
*filtered* partial result and the recipient's credentials, so the
researcher and the auditor never share cache entries — access control
composes with amortization.
"""

import argparse

from repro import CertificationAuthority, Federation, run_join_query, setup_client
from repro.mediation.access_control import AccessPolicy, AccessRule
from repro.relational import relation, schema
from repro.relational.conditions import Comparison
from repro.storage import StorageBackend, storage_from_spec


def build_data():
    clinic = relation(
        schema("clinic", patient="string", department="string", diagnosis="string"),
        [
            ("p-001", "oncology", "melanoma"),
            ("p-002", "cardiology", "arrhythmia"),
            ("p-003", "oncology", "lymphoma"),
            ("p-004", "neurology", "migraine"),
        ],
    )
    insurance = relation(
        schema("insurance", patient="string", plan="string", annual_cost="int"),
        [
            ("p-001", "premium", 48000),
            ("p-002", "basic", 7200),
            ("p-003", "basic", 31000),
            ("p-005", "premium", 900),
        ],
    )
    return clinic, insurance


def build_policies():
    clinic_policy = AccessPolicy(
        rules=[
            AccessRule(
                required_properties=frozenset({("role", "researcher")}),
                row_condition=Comparison("department", "=", "oncology"),
                description="researchers: oncology rows only",
            ),
            AccessRule(
                required_properties=frozenset({("role", "auditor")}),
                description="auditors: full access",
            ),
        ]
    )
    insurance_policy = AccessPolicy(
        rules=[
            AccessRule(
                required_properties=frozenset({("role", "researcher")}),
                row_condition=Comparison("annual_cost", "<", 40000),
                description="researchers: no high-cost cases",
            ),
            AccessRule(
                required_properties=frozenset({("role", "auditor")}),
                description="auditors: full access",
            ),
        ]
    )
    return clinic_policy, insurance_policy


def build_federation(
    role: str, storage: StorageBackend | None = None
) -> Federation:
    ca = CertificationAuthority(key_bits=1024)
    federation = Federation(ca=ca, storage=storage)
    clinic, insurance = build_data()
    clinic_policy, insurance_policy = build_policies()
    federation.add_source("clinic", [(clinic, clinic_policy)])
    federation.add_source("insurer", [(insurance, insurance_policy)])
    federation.attach_client(
        setup_client(ca, f"{role}-1", {("role", role)}, rsa_bits=1024)
    )
    return federation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--storage",
        default=None,
        metavar="SPEC",
        help="storage backend: 'memory' or 'sqlite:PATH'",
    )
    args = parser.parse_args()
    storage = storage_from_spec(args.storage)

    query = "select * from clinic natural join insurance"
    try:
        for role in ("researcher", "auditor"):
            federation = build_federation(role, storage)
            result = run_join_query(federation, query, protocol="commutative")
            print("=" * 72)
            print(f"client role: {role}")
            print(result.global_result.pretty())
            print(
                f"(mediator matched {result.artifacts['intersection_size']} "
                f"join values without seeing any of them)"
            )
            stats = result.artifacts.get("storage_cache")
            if stats is not None:
                print(
                    f"storage cache [{stats['backend']}]: "
                    f"hits={stats['hits']} misses={stats['misses']} "
                    f"puts={stats['puts']} errors={stats['errors']}"
                )
            print()
    finally:
        if storage is not None:
            storage.close()


if __name__ == "__main__":
    main()
