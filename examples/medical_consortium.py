"""Inter-enterprise scenario with credential-based access control.

The paper's Section 1 motivates mediation for "loosely coupled
participants ... that do not trust each other".  This example models a
medical research consortium: a clinic and an insurance company supply
data to a shared mediator; row-level access policies at each source
restrict what different credential holders may see.

Two clients issue the same global query:

* a *researcher* may only see anonymizable oncology rows at the clinic
  and no financial details at the insurer,
* an *auditor* with stronger credentials gets everything.

The mediator computes both joins over ciphertexts; neither the partial
results nor the global result are ever visible to it — yet access
control still filtered each client's view at the sources.

Run:  python examples/medical_consortium.py
"""

from repro import CertificationAuthority, Federation, run_join_query, setup_client
from repro.mediation.access_control import AccessPolicy, AccessRule
from repro.relational import relation, schema
from repro.relational.conditions import Comparison


def build_data():
    clinic = relation(
        schema("clinic", patient="string", department="string", diagnosis="string"),
        [
            ("p-001", "oncology", "melanoma"),
            ("p-002", "cardiology", "arrhythmia"),
            ("p-003", "oncology", "lymphoma"),
            ("p-004", "neurology", "migraine"),
        ],
    )
    insurance = relation(
        schema("insurance", patient="string", plan="string", annual_cost="int"),
        [
            ("p-001", "premium", 48000),
            ("p-002", "basic", 7200),
            ("p-003", "basic", 31000),
            ("p-005", "premium", 900),
        ],
    )
    return clinic, insurance


def build_policies():
    clinic_policy = AccessPolicy(
        rules=[
            AccessRule(
                required_properties=frozenset({("role", "researcher")}),
                row_condition=Comparison("department", "=", "oncology"),
                description="researchers: oncology rows only",
            ),
            AccessRule(
                required_properties=frozenset({("role", "auditor")}),
                description="auditors: full access",
            ),
        ]
    )
    insurance_policy = AccessPolicy(
        rules=[
            AccessRule(
                required_properties=frozenset({("role", "researcher")}),
                row_condition=Comparison("annual_cost", "<", 40000),
                description="researchers: no high-cost cases",
            ),
            AccessRule(
                required_properties=frozenset({("role", "auditor")}),
                description="auditors: full access",
            ),
        ]
    )
    return clinic_policy, insurance_policy


def build_federation(role: str) -> Federation:
    ca = CertificationAuthority(key_bits=1024)
    federation = Federation(ca=ca)
    clinic, insurance = build_data()
    clinic_policy, insurance_policy = build_policies()
    federation.add_source("clinic", [(clinic, clinic_policy)])
    federation.add_source("insurer", [(insurance, insurance_policy)])
    federation.attach_client(
        setup_client(ca, f"{role}-1", {("role", role)}, rsa_bits=1024)
    )
    return federation


def main() -> None:
    query = "select * from clinic natural join insurance"
    for role in ("researcher", "auditor"):
        federation = build_federation(role)
        result = run_join_query(federation, query, protocol="commutative")
        print("=" * 72)
        print(f"client role: {role}")
        print(result.global_result.pretty())
        print(
            f"(mediator matched {result.artifacts['intersection_size']} join "
            f"values without seeing any of them)"
        )
        print()


if __name__ == "__main__":
    main()
