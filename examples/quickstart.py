"""Quickstart: one mediated join query under all three protocols.

Builds a tiny federation — two datasources, one mediator, one client
with CA-issued credentials — and runs the same global JOIN query under
the DAS, commutative-encryption, and private-matching delivery phases.
Each run's decrypted global result is identical; what differs is the
transcript (bytes, messages, interactions), which is printed per run.

Run:  python examples/quickstart.py

With ``--storage`` the federation keeps its rows and encrypted-index
caches in a storage backend (docs/storage.md).  Point it at a SQLite
file and run the script twice to see persistence amortize the crypto
across *invocations* — the second run's ``storage cache`` lines report
hits served from the store the first run left behind:

    python examples/quickstart.py --storage sqlite:/tmp/quickstart.db
    python examples/quickstart.py --storage sqlite:/tmp/quickstart.db

(Private-matching stays cold across invocations by design: its cached
polynomial coefficients are bound to the querying client's Paillier
key, which this script generates fresh each run.)
"""

import argparse

from repro import (
    CertificationAuthority,
    Federation,
    run_join_query,
    setup_client,
)
from repro.mediation.access_control import allow_all
from repro.mediation.client import default_homomorphic_scheme
from repro.relational import relation, schema
from repro.storage import StorageBackend, storage_from_spec


def build_federation(storage: StorageBackend | None = None) -> Federation:
    """Two sources: patient registrations and lab results."""
    ca = CertificationAuthority(key_bits=1024)
    federation = Federation(ca=ca, storage=storage)

    patients = relation(
        schema("patients", patient="string", ward="string"),
        [
            ("ada", "cardiology"),
            ("grace", "oncology"),
            ("alan", "cardiology"),
            ("edsger", "neurology"),
        ],
    )
    labs = relation(
        schema("labs", patient="string", test="string", outcome="string"),
        [
            ("ada", "ecg", "normal"),
            ("ada", "troponin", "elevated"),
            ("grace", "biopsy", "benign"),
            ("linus", "x-ray", "normal"),
        ],
    )
    federation.add_source("hospital-A", [(patients, allow_all())])
    federation.add_source("lab-B", [(labs, allow_all())])

    client = setup_client(
        ca,
        identity="dr-noether",
        properties={("role", "physician"), ("clearance", "medical")},
        rsa_bits=1024,
        homomorphic_scheme=default_homomorphic_scheme(key_bits=1024),
    )
    federation.attach_client(client)
    return federation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--storage",
        default=None,
        metavar="SPEC",
        help="storage backend: 'memory' or 'sqlite:PATH' "
        "(persists rows and encrypted-index caches)",
    )
    args = parser.parse_args()

    query = "select * from patients natural join labs"
    print(f"global query: {query}\n")

    storage = storage_from_spec(args.storage)
    try:
        for protocol in ("das", "commutative", "private-matching"):
            federation = build_federation(storage)
            result = run_join_query(federation, query, protocol=protocol)
            print("=" * 72)
            print(result.summary())
            print()
            print(result.global_result.pretty())
            stats = result.artifacts.get("storage_cache")
            if stats is not None:
                print(
                    f"storage cache [{stats['backend']}]: "
                    f"hits={stats['hits']} misses={stats['misses']} "
                    f"puts={stats['puts']} errors={stats['errors']}"
                )
            print()
    finally:
        if storage is not None:
            storage.close()


if __name__ == "__main__":
    main()
