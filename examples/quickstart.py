"""Quickstart: one mediated join query under all three protocols.

Builds a tiny federation — two datasources, one mediator, one client
with CA-issued credentials — and runs the same global JOIN query under
the DAS, commutative-encryption, and private-matching delivery phases.
Each run's decrypted global result is identical; what differs is the
transcript (bytes, messages, interactions), which is printed per run.

Run:  python examples/quickstart.py
"""

from repro import (
    CertificationAuthority,
    Federation,
    run_join_query,
    setup_client,
)
from repro.mediation.access_control import allow_all
from repro.mediation.client import default_homomorphic_scheme
from repro.relational import relation, schema


def build_federation() -> Federation:
    """Two sources: patient registrations and lab results."""
    ca = CertificationAuthority(key_bits=1024)
    federation = Federation(ca=ca)

    patients = relation(
        schema("patients", patient="string", ward="string"),
        [
            ("ada", "cardiology"),
            ("grace", "oncology"),
            ("alan", "cardiology"),
            ("edsger", "neurology"),
        ],
    )
    labs = relation(
        schema("labs", patient="string", test="string", outcome="string"),
        [
            ("ada", "ecg", "normal"),
            ("ada", "troponin", "elevated"),
            ("grace", "biopsy", "benign"),
            ("linus", "x-ray", "normal"),
        ],
    )
    federation.add_source("hospital-A", [(patients, allow_all())])
    federation.add_source("lab-B", [(labs, allow_all())])

    client = setup_client(
        ca,
        identity="dr-noether",
        properties={("role", "physician"), ("clearance", "medical")},
        rsa_bits=1024,
        homomorphic_scheme=default_homomorphic_scheme(key_bits=1024),
    )
    federation.attach_client(client)
    return federation


def main() -> None:
    query = "select * from patients natural join labs"
    print(f"global query: {query}\n")

    for protocol in ("das", "commutative", "private-matching"):
        federation = build_federation()
        result = run_join_query(federation, query, protocol=protocol)
        print("=" * 72)
        print(result.summary())
        print()
        print(result.global_result.pretty())
        print()


if __name__ == "__main__":
    main()
