"""Comparing the mediated protocols with their two-party originals.

The paper adapts two-party constructions (Agrawal et al. [1], Freedman
et al. [12]) to the mediated setting. This example runs both variants on
the same data and contrasts:

* who learns the intersection *values* (the two-party receiver — a data
  party — vs nobody but the querying client in the mediated version),
* the traffic cost of routing everything through the mediator,
* how the transcripts differ under LAN vs satellite network models.

Run:  python examples/two_party_vs_mediated.py [--storage memory|sqlite:PATH]

``--storage`` applies to the mediated run only: the two-party baseline
predates the storage engine and always computes from memory — which is
itself part of the contrast.
"""

import argparse

from repro import CertificationAuthority, Federation, run_join_query, setup_client
from repro.baselines import two_party_equijoin
from repro.mediation.access_control import allow_all
from repro.mediation.costmodel import LAN, WAN
from repro.relational import relation, schema
from repro.storage import storage_from_spec


def build_data():
    suppliers = relation(
        schema("suppliers", part="string", supplier="string"),
        [
            ("bolt-m4", "acme"),
            ("nut-m4", "acme"),
            ("washer-8", "globex"),
            ("rivet-3", "initech"),
        ],
    )
    orders = relation(
        schema("orders", part="string", quantity="int"),
        [
            ("bolt-m4", 1200),
            ("washer-8", 300),
            ("gasket-x", 50),
        ],
    )
    return suppliers, orders


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--storage",
        default=None,
        metavar="SPEC",
        help="storage backend for the mediated run: 'memory' or 'sqlite:PATH'",
    )
    args = parser.parse_args()
    storage = storage_from_spec(args.storage)

    suppliers, orders = build_data()

    # --- Two-party baseline: the supplier registry acts as receiver and
    # learns which parts are shared, plus the matching order tuples.
    baseline = two_party_equijoin(suppliers, orders, ("part",))
    print("== two-party Agrawal equijoin ==")
    print(f"receiver learned shared parts: "
          f"{[key[0] for key in baseline.intersection]}")
    print(baseline.joined.pretty())
    print(f"traffic: {baseline.network.total_bytes()} bytes over "
          f"{len(baseline.network.transcript)} messages\n")

    # --- Mediated version: same join, but neither source learns the
    # other's parts; the untrusted mediator matches blindly.
    ca = CertificationAuthority(key_bits=1024)
    federation = Federation(ca=ca, storage=storage)
    federation.add_source("registry", [(suppliers, allow_all())])
    federation.add_source("purchasing", [(orders, allow_all())])
    federation.attach_client(
        setup_client(ca, "auditor", {("role", "auditor")}, rsa_bits=1024)
    )
    try:
        mediated = run_join_query(
            federation, "select * from suppliers natural join orders",
            protocol="commutative",
        )
    finally:
        if storage is not None:
            storage.close()
    print("== mediated commutative protocol ==")
    print(mediated.global_result.pretty())
    print(f"traffic: {mediated.total_bytes()} bytes over "
          f"{len(mediated.network.transcript)} messages")
    print(f"mediator learned only counts: intersection_size="
          f"{mediated.artifacts['intersection_size']}\n")

    print("== estimated transfer seconds ==")
    for model in (LAN, WAN):
        print(
            f"{model.name:>4s}: two-party "
            f"{model.transcript_cost(baseline.network):.4f}s, mediated "
            f"{model.transcript_cost(mediated.network):.4f}s"
        )
    print(
        "\nMediation costs traffic and rounds; it buys the paper's "
        "trust model: the matching party sees only ciphertexts."
    )


if __name__ == "__main__":
    main()
