"""Section-6-style protocol comparison on a synthetic workload.

Generates a parameterized workload, runs all three delivery protocols
(plus the footnote variants) on fresh federations, and prints the
measured comparison table: interaction counts, client-received units,
traffic, crypto operations and wall-clock seconds — the quantities
behind the paper's qualitative ranking ("the commutative approach seems
to be the most efficient one").

Run:  python examples/protocol_comparison.py [domain_size]

Pass ``--storage memory`` or ``--storage sqlite:PATH`` to run the same
comparison over a storage-backed data plane (docs/storage.md); with a
persistent SQLite store, a second invocation measures the *warm-cache*
costs — crypto-op counts drop where the encrypted-index cache serves
the artifacts the first invocation computed.
"""

import argparse

from repro import (
    CertificationAuthority,
    CommutativeConfig,
    DASConfig,
    Federation,
    PMConfig,
    setup_client,
)
from repro.analysis import compare, render
from repro.mediation.access_control import allow_all
from repro.mediation.client import default_homomorphic_scheme
from repro.relational.datagen import WorkloadSpec, generate
from repro.storage import storage_from_spec


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("domain", nargs="?", type=int, default=12)
    parser.add_argument(
        "--storage",
        default=None,
        metavar="SPEC",
        help="storage backend: 'memory' or 'sqlite:PATH'",
    )
    args = parser.parse_args()
    domain = args.domain
    storage = storage_from_spec(args.storage)
    workload = generate(
        WorkloadSpec(
            domain_1=domain,
            domain_2=domain,
            overlap=domain // 2,
            rows_per_value_1=2,
            rows_per_value_2=2,
            payload_attributes=2,
            seed=42,
        )
    )

    def federation_factory() -> Federation:
        ca = CertificationAuthority(key_bits=1024)
        federation = Federation(ca=ca, storage=storage)
        federation.add_source("S1", [(workload.relation_1, allow_all())])
        federation.add_source("S2", [(workload.relation_2, allow_all())])
        federation.attach_client(
            setup_client(
                ca,
                "analyst",
                {("role", "analyst")},
                rsa_bits=1024,
                homomorphic_scheme=default_homomorphic_scheme(1024),
            )
        )
        return federation

    protocols = [
        ("das", DASConfig(buckets=4)),
        ("das", DASConfig(strategy="singleton")),
        ("commutative", CommutativeConfig()),
        ("commutative", CommutativeConfig(use_tuple_ids=True)),
        ("private-matching", PMConfig()),
        ("private-matching", PMConfig(payload_mode="inline")),
    ]
    print(
        f"workload: |dom1|=|dom2|={domain}, overlap={domain // 2}, "
        f"|R1|={len(workload.relation_1)}, |R2|={len(workload.relation_2)}, "
        f"expected join={workload.expected_join_size}\n"
    )
    try:
        rows = compare(
            federation_factory, "select * from R1 natural join R2", protocols
        )
    finally:
        if storage is not None:
            storage.close()
    print(render(rows))
    if storage is not None:
        print(f"storage backend: {storage.describe()}")
    print(
        "\nSection 6 shape checks:\n"
        f"  client interacts twice in DAS:       "
        f"{rows[0].client_interactions == 2}\n"
        f"  sources interact once in DAS:        "
        f"{rows[0].max_source_interactions == 1}\n"
        f"  sources interact twice elsewhere:    "
        f"{all(r.max_source_interactions == 2 for r in rows[2:])}\n"
        f"  commutative client gets exact sets:  "
        f"{rows[2].client_received_units <= rows[0].client_received_units}\n"
    )


if __name__ == "__main__":
    main()
