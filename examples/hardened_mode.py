"""Hardened mode: the differential audit's distances, before and after.

Runs the differential leakage audit twice over the same seeded adjacent
workload pair — once plain, once in the leakage-hardened oblivious mode
(``hardening=True``: uniform plaintext padding, dummy tuples that
decrypt-to-discard, fixed-size cover frames) — and prints the
per-adversary distances side by side.  The plain run shows Table 1's
disclosures as nonzero movement; the hardened run shows the same
adversaries seeing *nothing move at all*, at a measured byte cost
(``docs/security.md``, "Hardened mode").

It finishes with a single hardened query whose result is checked
byte-for-byte against the plain run — padding is observable-only.

Run:  python examples/hardened_mode.py
"""

from repro import (
    CertificationAuthority,
    Federation,
    run_join_query,
    setup_client,
)
from repro.analysis.audit import (
    HARDENED_GATE_RULES,
    AuditConfig,
    differential_audit,
    render_audit_summary,
)
from repro.mediation.access_control import allow_all
from repro.mediation.client import default_homomorphic_scheme
from repro.relational.datagen import WorkloadSpec, generate
from repro.relational.encoding import encode_relation

SPEC = WorkloadSpec(
    domain_1=6,
    domain_2=6,
    overlap=3,
    rows_per_value_1=1,
    rows_per_value_2=1,
    seed=11,
)

QUERY = "select * from R1 natural join R2"


def main() -> None:
    ca = CertificationAuthority(key_bits=1024)
    client = setup_client(
        ca,
        "analyst",
        {("role", "analyst")},
        rsa_bits=1024,
        homomorphic_scheme=default_homomorphic_scheme(768),
    )

    def factory(workload, network):
        federation = Federation(ca=ca, network=network)
        federation.add_source("S1", [(workload.relation_1, allow_all())])
        federation.add_source("S2", [(workload.relation_2, allow_all())])
        federation.attach_client(client)
        return federation

    print("=== Plain audit: what each adversary sees move ===")
    plain = differential_audit(
        AuditConfig(spec=SPEC, paillier_bits=768), federation_factory=factory
    )
    print(render_audit_summary(plain))

    print()
    print("=== Hardened audit: the same adversaries, zero movement ===")
    hardened = differential_audit(
        AuditConfig(spec=SPEC, paillier_bits=768, hardened=True),
        federation_factory=factory,
    )
    print(render_audit_summary(hardened))

    breaches = [
        f"{protocol}/{adversary}/{metric}={value}"
        for protocol, entry in hardened["protocols"].items()
        for adversary, audit in entry["adversaries"].items()
        for metric, value in audit["distances"].items()
        if metric in HARDENED_GATE_RULES
        and value > HARDENED_GATE_RULES[metric]["slack"]
    ]
    assert not breaches, f"hardened envelope breached: {breaches}"
    print()
    print("hardened envelope: all distances within epsilon "
          f"({len(hardened['protocols'])} protocols, 4 adversaries each)")

    print()
    print("=== Padding is observable-only: same result, measured cost ===")
    workload = generate(SPEC)
    plain_result = run_join_query(
        _federation(ca, client, workload), QUERY, protocol="commutative"
    )
    hardened_result = run_join_query(
        _federation(ca, client, workload),
        QUERY,
        protocol="commutative",
        hardening=True,
    )
    assert encode_relation(plain_result.global_result) == encode_relation(
        hardened_result.global_result
    )
    cost = hardened_result.artifacts["hardening"]
    print(f"result rows: {len(hardened_result.global_result.rows)} "
          "(byte-identical to the plain run)")
    print(f"padding overhead: x{cost['overhead_factor']} plaintext bytes, "
          f"{cost['dummy_items_total']} dummy items, "
          f"{cost['frames_total']} result frames "
          f"({cost['dummy_frames_total']} all-dummy)")


def _federation(ca, client, workload) -> Federation:
    federation = Federation(ca=ca)
    federation.add_source("S1", [(workload.relation_1, allow_all())])
    federation.add_source("S2", [(workload.relation_2, allow_all())])
    federation.attach_client(client)
    return federation


if __name__ == "__main__":
    main()
