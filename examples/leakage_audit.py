"""Leakage audit: reproducing Tables 1 and 2 from live transcripts.

Runs all three protocols, derives every Table-1 cell from the actual
mediator/client views, audits the primitive counters for Table 2, checks
Listing 1-4 flow conformance and the Figure 1/2 star topology, and scans
the mediator's received bytes for plaintext tuples.

It then demonstrates *why* the paper's client setting matters: in the
insecure mediator-setting DAS baseline the very same scan finds the
partition contents (join-attribute values) in the mediator's view.

It finishes with the differential audit: the same query over a seeded
workload and its adjacent twin (one join value moved), printing the
per-adversary observable-distance summary — Table 1 as a measurement
rather than an inventory (docs/security.md, "Measured leakage").

Run:  python examples/leakage_audit.py [--storage memory|sqlite:PATH]

``--storage`` runs the same audit over a storage-backed data plane:
the leakage guarantees must hold unchanged, because the cache stores
only the ciphertext artifacts the mediator would see anyway
(docs/storage.md discusses what the store itself learns at rest).
"""

import argparse

from repro import (
    CertificationAuthority,
    DASConfig,
    Federation,
    run_join_query,
    setup_client,
)
from repro.analysis import (
    analyze,
    architecture_edges,
    check_flow,
    primitive_profile,
    table1,
    table2,
    verify_no_plaintext_leak,
)
from repro.analysis.audit import (
    AuditConfig,
    differential_audit,
    render_audit_summary,
)
from repro.relational.datagen import WorkloadSpec
from repro.mediation.access_control import allow_all
from repro.mediation.client import default_homomorphic_scheme
from repro.relational.datagen import medical_workload
from repro.storage import StorageBackend, storage_from_spec


def build_federation(
    workload, storage: StorageBackend | None = None
) -> Federation:
    ca = CertificationAuthority(key_bits=1024)
    federation = Federation(ca=ca, storage=storage)
    federation.add_source("clinic", [(workload.relation_1, allow_all())])
    federation.add_source("lab", [(workload.relation_2, allow_all())])
    federation.attach_client(
        setup_client(
            ca,
            "auditor",
            {("role", "auditor")},
            rsa_bits=1024,
            homomorphic_scheme=default_homomorphic_scheme(1024),
        )
    )
    return federation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--storage",
        default=None,
        metavar="SPEC",
        help="storage backend: 'memory' or 'sqlite:PATH'",
    )
    args = parser.parse_args()
    storage = storage_from_spec(args.storage)

    workload = medical_workload()
    query = "select * from clinic natural join lab"
    relations = [workload.relation_1, workload.relation_2]

    reports, profiles = [], []
    for protocol in ("das", "commutative", "private-matching"):
        result = run_join_query(
            build_federation(workload, storage), query, protocol=protocol
        )
        reports.append(analyze(result))
        profiles.append(primitive_profile(result))
        flow = check_flow(result)
        topology = architecture_edges(result)
        leaks = verify_no_plaintext_leak(result, relations)
        print(
            f"{result.protocol:32s} flow-conforms={flow.conforms} "
            f"topology-ok={all(topology.values())} plaintext-leaks={len(leaks)}"
        )

    print()
    print(table1(reports))
    print()
    print(table2(profiles))

    # The cautionary tale: the mediator-setting DAS baseline.
    print("\n--- insecure baseline: DAS with the translator at the mediator ---")
    result = run_join_query(
        build_federation(workload, storage),
        query,
        protocol="das",
        config=DASConfig(setting="mediator"),
    )
    leaks = verify_no_plaintext_leak(result, relations)
    print(
        f"{result.protocol}: plaintext items visible to the mediator: "
        f"{len(leaks)}"
    )
    for leak in leaks[:5]:
        print(f"  {leak}")
    if len(leaks) > 5:
        print(f"  ... and {len(leaks) - 5} more")
    print(
        "\n=> exactly the paper's warning: 'it is crucial to encrypt the "
        "index table and let the query translator reside on client side'"
    )
    # Table 1 as a measurement: how far does each adversary's observable
    # view move when the input moves by one tuple?
    print("\n--- differential audit: adjacent workloads, every adversary ---")
    document = differential_audit(
        AuditConfig(
            spec=WorkloadSpec(
                domain_1=6,
                domain_2=6,
                overlap=3,
                rows_per_value_1=1,
                rows_per_value_2=1,
                seed=11,
            )
        )
    )
    perturbation = document["workload"]["perturbation"]
    print(
        f"perturbation: {perturbation['rows_rewritten']} row(s) of "
        f"{perturbation['relation']} moved "
        f"{perturbation['replaced_value']} -> {perturbation['replacement']}\n"
    )
    print(render_audit_summary(document))
    print(
        "\n=> the DAS mediator sees the largest cardinality movement "
        "(|R_C|), private matching moves nothing the mediator can count "
        "-- the measured form of Table 1's ordering"
    )
    if storage is not None:
        storage.close()


if __name__ == "__main__":
    main()
